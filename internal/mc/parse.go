package mc

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a CTL formula in a conventional surface syntax:
//
//	formula  := implied
//	implied  := or ( "->" implied )?
//	or       := and ( "|" and )*
//	and      := unary ( "&" unary )*
//	unary    := "!" unary
//	         |  ("EX"|"EF"|"EG"|"AX"|"AF"|"AG") unary
//	         |  ("E"|"A") "[" formula "U" formula "]"
//	         |  "(" formula ")" | "true" | "false" | atom
//	atom     := identifier (letters, digits, '_', '.')
//
// Examples: "AG(req -> AF ack)", "E[!err U done]", "EF (sp2 & sp0)".
func Parse(src string) (*Formula, error) {
	p := &parser{src: src}
	f, err := p.formula()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("mc: trailing input at %d: %q", p.pos, p.src[p.pos:])
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek(tok string) bool {
	p.skipSpace()
	return strings.HasPrefix(p.src[p.pos:], tok)
}

func (p *parser) accept(tok string) bool {
	if p.peek(tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *parser) expect(tok string) error {
	if !p.accept(tok) {
		return fmt.Errorf("mc: expected %q at position %d", tok, p.pos)
	}
	return nil
}

func (p *parser) formula() (*Formula, error) {
	left, err := p.or()
	if err != nil {
		return nil, err
	}
	if p.accept("->") {
		right, err := p.formula()
		if err != nil {
			return nil, err
		}
		return Implies(left, right), nil
	}
	return left, nil
}

func (p *parser) or() (*Formula, error) {
	left, err := p.and()
	if err != nil {
		return nil, err
	}
	for p.peek("|") && !p.peek("||") {
		p.accept("|")
		right, err := p.and()
		if err != nil {
			return nil, err
		}
		left = Or(left, right)
	}
	return left, nil
}

func (p *parser) and() (*Formula, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.peek("&") {
		p.accept("&")
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = And(left, right)
	}
	return left, nil
}

// temporalOps maps the two-letter prefixes to constructors.
var temporalOps = map[string]func(*Formula) *Formula{
	"EX": EX, "EF": EF, "EG": EG, "AX": AX, "AF": AF, "AG": AG,
}

func (p *parser) unary() (*Formula, error) {
	p.skipSpace()
	if p.accept("!") {
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	}
	for tok, mk := range temporalOps {
		if p.matchKeyword(tok) {
			f, err := p.unary()
			if err != nil {
				return nil, err
			}
			return mk(f), nil
		}
	}
	// E[f U g] / A[f U g]
	if p.peek("E[") || p.peek("A[") {
		all := p.src[p.pos] == 'A'
		p.pos += 2
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if !p.matchKeyword("U") {
			return nil, fmt.Errorf("mc: expected U at position %d", p.pos)
		}
		g, err := p.formula()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		if all {
			return AU(f, g), nil
		}
		return EU(f, g), nil
	}
	if p.accept("(") {
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	// Constants and atoms.
	if p.matchKeyword("true") {
		return True(), nil
	}
	if p.matchKeyword("false") {
		return False(), nil
	}
	name := p.ident()
	if name == "" {
		return nil, fmt.Errorf("mc: expected a formula at position %d", p.pos)
	}
	return Atom(name), nil
}

// matchKeyword consumes tok only when it is followed by a non-identifier
// character (so the atom "EXtra" is not misread as EX tra).
func (p *parser) matchKeyword(tok string) bool {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], tok) {
		return false
	}
	rest := p.src[p.pos+len(tok):]
	if rest != "" && isIdentChar(rune(rest[0])) {
		return false
	}
	p.pos += len(tok)
	return true
}

func (p *parser) ident() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isIdentChar(rune(p.src[p.pos])) {
		p.pos++
	}
	return p.src[start:p.pos]
}

func isIdentChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}
