// Package mc is a BDD-based CTL model checker built on the reachability
// engine — the application context of the paper (its traversal engine
// lives inside VIS, a model checker). Atomic propositions are predicates
// over a compiled circuit's state variables; the checker computes
// satisfaction sets with the standard fixpoint characterizations, using
// the transition relation's image and preimage operators.
package mc

import (
	"fmt"
	"strings"
)

// Formula is a CTL formula. Build formulas with the constructors below or
// parse them from text with Parse.
type Formula struct {
	op    opKind
	name  string   // atom name (opAtom)
	left  *Formula // unary and binary operands
	right *Formula // binary operands / the U in E[f U g]
}

type opKind uint8

const (
	opTrue opKind = iota
	opFalse
	opAtom
	opNot
	opAnd
	opOr
	opImplies
	opEX
	opEF
	opEG
	opEU
	opAX
	opAF
	opAG
	opAU
)

// True and False are the constant formulas.
func True() *Formula  { return &Formula{op: opTrue} }
func False() *Formula { return &Formula{op: opFalse} }

// Atom references a named atomic proposition (bound to a state predicate
// at checking time).
func Atom(name string) *Formula { return &Formula{op: opAtom, name: name} }

// Not, And, Or, Implies are the boolean connectives.
func Not(f *Formula) *Formula        { return &Formula{op: opNot, left: f} }
func And(f, g *Formula) *Formula     { return &Formula{op: opAnd, left: f, right: g} }
func Or(f, g *Formula) *Formula      { return &Formula{op: opOr, left: f, right: g} }
func Implies(f, g *Formula) *Formula { return &Formula{op: opImplies, left: f, right: g} }

// EX f: some successor satisfies f.
func EX(f *Formula) *Formula { return &Formula{op: opEX, left: f} }

// EF f: some path eventually reaches f.
func EF(f *Formula) *Formula { return &Formula{op: opEF, left: f} }

// EG f: some path satisfies f forever.
func EG(f *Formula) *Formula { return &Formula{op: opEG, left: f} }

// EU(f, g) is E[f U g]: some path stays in f until it reaches g.
func EU(f, g *Formula) *Formula { return &Formula{op: opEU, left: f, right: g} }

// AX f: every successor satisfies f.
func AX(f *Formula) *Formula { return &Formula{op: opAX, left: f} }

// AF f: every path eventually reaches f.
func AF(f *Formula) *Formula { return &Formula{op: opAF, left: f} }

// AG f: f holds on every reachable point of every path.
func AG(f *Formula) *Formula { return &Formula{op: opAG, left: f} }

// AU(f, g) is A[f U g].
func AU(f, g *Formula) *Formula { return &Formula{op: opAU, left: f, right: g} }

// String renders the formula in the surface syntax Parse accepts.
func (f *Formula) String() string {
	var sb strings.Builder
	f.write(&sb)
	return sb.String()
}

func (f *Formula) write(sb *strings.Builder) {
	switch f.op {
	case opTrue:
		sb.WriteString("true")
	case opFalse:
		sb.WriteString("false")
	case opAtom:
		sb.WriteString(f.name)
	case opNot:
		sb.WriteString("!")
		f.left.writeAtomic(sb)
	case opAnd, opOr, opImplies:
		f.left.writeAtomic(sb)
		switch f.op {
		case opAnd:
			sb.WriteString(" & ")
		case opOr:
			sb.WriteString(" | ")
		default:
			sb.WriteString(" -> ")
		}
		f.right.writeAtomic(sb)
	case opEX, opEF, opEG, opAX, opAF, opAG:
		sb.WriteString(map[opKind]string{
			opEX: "EX", opEF: "EF", opEG: "EG",
			opAX: "AX", opAF: "AF", opAG: "AG",
		}[f.op])
		sb.WriteString(" ")
		f.left.writeAtomic(sb)
	case opEU, opAU:
		if f.op == opEU {
			sb.WriteString("E[")
		} else {
			sb.WriteString("A[")
		}
		f.left.write(sb)
		sb.WriteString(" U ")
		f.right.write(sb)
		sb.WriteString("]")
	}
}

func (f *Formula) writeAtomic(sb *strings.Builder) {
	switch f.op {
	case opTrue, opFalse, opAtom, opNot, opEU, opAU:
		f.write(sb)
	default:
		sb.WriteString("(")
		f.write(sb)
		sb.WriteString(")")
	}
}

// Atoms returns the distinct atom names used in the formula.
func (f *Formula) Atoms() []string {
	seen := map[string]bool{}
	var out []string
	var walk func(g *Formula)
	walk = func(g *Formula) {
		if g == nil {
			return
		}
		if g.op == opAtom && !seen[g.name] {
			seen[g.name] = true
			out = append(out, g.name)
		}
		walk(g.left)
		walk(g.right)
	}
	walk(f)
	return out
}

// Validate checks structural sanity (mainly for parsed formulas).
func (f *Formula) Validate() error {
	switch f.op {
	case opTrue, opFalse:
		return nil
	case opAtom:
		if f.name == "" {
			return fmt.Errorf("mc: empty atom name")
		}
		return nil
	case opNot, opEX, opEF, opEG, opAX, opAF, opAG:
		if f.left == nil {
			return fmt.Errorf("mc: missing operand")
		}
		return f.left.Validate()
	case opAnd, opOr, opImplies, opEU, opAU:
		if f.left == nil || f.right == nil {
			return fmt.Errorf("mc: missing operand")
		}
		if err := f.left.Validate(); err != nil {
			return err
		}
		return f.right.Validate()
	}
	return fmt.Errorf("mc: unknown operator")
}
