package mc

import (
	"fmt"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/reach"
)

// Checker evaluates CTL formulas over a compiled circuit. Satisfaction
// sets are BDDs over the present-state variables; the temporal operators
// use the transition relation's PreImage with the standard fixpoint
// characterizations:
//
//	EX f       = Pre(f)
//	EG f       = gfp Z. f ∧ Pre(Z)
//	E[f U g]   = lfp Z. g ∨ (f ∧ Pre(Z))
//
// and the universal operators by duality. When ReachableOnly is set the
// checker first computes the reachable states R and evaluates relative to
// R (the standard "don't care" optimization: satisfaction sets are
// intersected with R, which also keeps the fixpoint iterates small).
type Checker struct {
	C  *circuit.Compiled
	TR *reach.TR

	atoms   map[string]bdd.Ref
	reached bdd.Ref // One when not restricted
	stats   reach.ImageStats
}

// NewChecker builds a checker. atoms binds atomic-proposition names to
// state predicates; use DefineLatchAtoms and friends to populate it
// conveniently. The checker takes its own references on the atom
// predicates.
func NewChecker(c *circuit.Compiled, tr *reach.TR, atoms map[string]bdd.Ref) *Checker {
	ck := &Checker{C: c, TR: tr, atoms: make(map[string]bdd.Ref, len(atoms)), reached: bdd.One}
	for name, f := range atoms {
		ck.atoms[name] = c.M.Ref(f)
	}
	return ck
}

// Release drops the checker's references (atoms and the reachable set).
func (ck *Checker) Release() {
	for _, f := range ck.atoms {
		ck.C.M.Deref(f)
	}
	ck.atoms = nil
	ck.C.M.Deref(ck.reached)
	ck.reached = bdd.One
}

// DefineAtom binds (or rebinds) one atomic proposition.
func (ck *Checker) DefineAtom(name string, pred bdd.Ref) {
	m := ck.C.M
	if old, ok := ck.atoms[name]; ok {
		m.Deref(old)
	}
	ck.atoms[name] = m.Ref(pred)
}

// DefineLatchAtoms binds one atom per latch, named after the latch output
// signal, true when the latch holds 1.
func (ck *Checker) DefineLatchAtoms() {
	for i, l := range ck.C.Nl.Latches {
		ck.DefineAtom(ck.C.Nl.NameOf(l.Q), ck.C.M.IthVar(ck.C.StateVars[i]))
	}
}

// RestrictToReachable computes the reachable states (exact BFS) and
// evaluates subsequent formulas relative to them. Returns the number of
// reachable states.
func (ck *Checker) RestrictToReachable(opts reach.Options) (float64, error) {
	res := ck.TR.BFS(ck.C.Init, opts)
	if !res.Completed {
		ck.C.M.Deref(res.Reached)
		return 0, fmt.Errorf("mc: reachability did not complete within budget")
	}
	ck.C.M.Deref(ck.reached)
	ck.reached = res.Reached
	return res.States, nil
}

// Sat returns the set of (reachable, when restricted) states satisfying f.
// The caller owns the returned reference.
func (ck *Checker) Sat(f *Formula) (bdd.Ref, error) {
	if err := f.Validate(); err != nil {
		return bdd.Zero, err
	}
	return ck.sat(f)
}

func (ck *Checker) sat(f *Formula) (bdd.Ref, error) {
	m := ck.C.M
	switch f.op {
	case opTrue:
		return m.Ref(ck.reached), nil
	case opFalse:
		return bdd.Zero, nil
	case opAtom:
		p, ok := ck.atoms[f.name]
		if !ok {
			return bdd.Zero, fmt.Errorf("mc: unbound atom %q", f.name)
		}
		return m.And(p, ck.reached), nil
	case opNot:
		s, err := ck.sat(f.left)
		if err != nil {
			return bdd.Zero, err
		}
		r := m.Diff(ck.reached, s)
		m.Deref(s)
		return r, nil
	case opAnd, opOr, opImplies:
		a, err := ck.sat(f.left)
		if err != nil {
			return bdd.Zero, err
		}
		b, err := ck.sat(f.right)
		if err != nil {
			m.Deref(a)
			return bdd.Zero, err
		}
		var r bdd.Ref
		switch f.op {
		case opAnd:
			r = m.And(a, b)
		case opOr:
			r = m.Or(a, b)
		default: // implies, relative to the care set
			na := m.Diff(ck.reached, a)
			r = m.Or(na, b)
			m.Deref(na)
		}
		m.Deref(a)
		m.Deref(b)
		return r, nil
	case opEX:
		s, err := ck.sat(f.left)
		if err != nil {
			return bdd.Zero, err
		}
		r := ck.pre(s)
		m.Deref(s)
		return r, nil
	case opEF:
		// EF f = E[true U f]
		s, err := ck.sat(f.left)
		if err != nil {
			return bdd.Zero, err
		}
		r := ck.leastFixpoint(m.Ref(ck.reached), s)
		m.Deref(s)
		return r, nil
	case opEU:
		a, err := ck.sat(f.left)
		if err != nil {
			return bdd.Zero, err
		}
		b, err := ck.sat(f.right)
		if err != nil {
			m.Deref(a)
			return bdd.Zero, err
		}
		r := ck.leastFixpoint(a, b)
		m.Deref(b)
		return r, nil
	case opEG:
		s, err := ck.sat(f.left)
		if err != nil {
			return bdd.Zero, err
		}
		r := ck.greatestFixpoint(s)
		m.Deref(s)
		return r, nil
	case opAX:
		// AX f = ¬EX ¬f
		return ck.sat(Not(EX(Not(f.left))))
	case opAF:
		// AF f = ¬EG ¬f
		return ck.sat(Not(EG(Not(f.left))))
	case opAG:
		// AG f = ¬EF ¬f
		return ck.sat(Not(EF(Not(f.left))))
	case opAU:
		// A[f U g] = ¬( E[¬g U (¬f ∧ ¬g)] ∨ EG ¬g )
		ng := Not(f.right)
		return ck.sat(Not(Or(EU(ng, And(Not(f.left), ng)), EG(ng))))
	}
	return bdd.Zero, fmt.Errorf("mc: unknown operator")
}

// pre returns Pre(s) restricted to the care set. The caller owns the
// result; s is not consumed.
func (ck *Checker) pre(s bdd.Ref) bdd.Ref {
	m := ck.C.M
	p := ck.TR.PreImage(s, &ck.stats)
	r := m.And(p, ck.reached)
	m.Deref(p)
	return r
}

// leastFixpoint computes lfp Z. g ∨ (f ∧ Pre(Z)) where f is the "stay"
// set and g the "target" set. It consumes the reference passed as f (the
// callers hand over ownership) and leaves g to the caller.
func (ck *Checker) leastFixpoint(f, g bdd.Ref) bdd.Ref {
	m := ck.C.M
	z := m.Ref(g)
	for {
		p := ck.pre(z)
		fp := m.And(f, p)
		m.Deref(p)
		nz := m.Or(z, fp)
		m.Deref(fp)
		if nz == z {
			m.Deref(nz)
			m.Deref(f)
			return z
		}
		m.Deref(z)
		z = nz
	}
}

// greatestFixpoint computes gfp Z. f ∧ Pre(Z).
func (ck *Checker) greatestFixpoint(f bdd.Ref) bdd.Ref {
	m := ck.C.M
	z := m.Ref(f)
	for {
		p := ck.pre(z)
		nz := m.And(f, p)
		m.Deref(p)
		if nz == z {
			m.Deref(nz)
			return z
		}
		m.Deref(z)
		z = nz
	}
}

// Holds reports whether every initial state satisfies f.
func (ck *Checker) Holds(f *Formula) (bool, error) {
	s, err := ck.Sat(f)
	if err != nil {
		return false, err
	}
	// When restricted, init ⊆ reached by construction.
	init := ck.C.M.And(ck.C.Init, ck.reached)
	ok := ck.C.M.Leq(init, s)
	ck.C.M.Deref(init)
	ck.C.M.Deref(s)
	return ok, nil
}

// Stats returns the accumulated preimage statistics.
func (ck *Checker) Stats() reach.ImageStats { return ck.stats }
