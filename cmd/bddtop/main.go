// Command bddtop is a live terminal console over the -obs endpoint: point
// it at a running reach/tables/bddlab/mc/equiv process started with
// -obs :6060 and it polls /metrics (Prometheus exposition), /quality (the
// approximation-loss ledger), /timeseries (the sampled gauge trajectories)
// and /parallel (work-stealing engine telemetry), rendering one refreshing
// frame per interval:
//
//   - manager gauges — live/dead nodes, node limit with a budget-headroom
//     bar, arena occupancy, cache hit rate, STW share;
//   - trajectories — sparklines of live nodes, mass retained, and budget
//     headroom over the sampler's ring (~64 s of history);
//   - the quality ledger — loss-so-far per operator (count, aborts, mean
//     and minimum mass retained, nodes shed) plus the most recent
//     operation (current reach iteration, its mass trade, abort cause);
//   - the parallel engine (when the process runs one) — workers, steal
//     ratio, and the top-K hottest unique-table levels by contention.
//
// Usage:
//
//	bddtop                       # watch localhost:6060
//	bddtop -addr host:7070       # elsewhere
//	bddtop -interval 250ms       # faster refresh
//	bddtop -frames 3 -plain      # three frames, no ANSI (CI / piping)
//
// With -plain each frame is printed sequentially instead of redrawing in
// place, which makes the output usable in logs and tests.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"bddkit/internal/cliutil"
	"bddkit/internal/obs"
)

func main() {
	addr := flag.String("addr", "localhost:6060", "host:port of the -obs endpoint to watch")
	interval := flag.Duration("interval", time.Second, "poll/refresh interval")
	frames := flag.Int("frames", 0, "stop after this many frames (0 = run until the endpoint goes away)")
	topK := flag.Int("topk", 5, "hot unique-table levels to show in the parallel panel")
	plain := flag.Bool("plain", false, "no ANSI control sequences; print frames sequentially")
	flag.Parse()
	if err := cliutil.Check(
		cliutil.PositiveDuration("interval", *interval),
		cliutil.NonNegative("frames", *frames),
		cliutil.NonNegative("topk", *topK),
	); err != nil {
		fmt.Fprintln(os.Stderr, "bddtop:", err)
		os.Exit(2)
	}

	c := &console{
		base:   "http://" + *addr,
		client: &http.Client{Timeout: 5 * time.Second},
		topK:   *topK,
		plain:  *plain,
	}
	failures := 0
	for frame := 1; ; frame++ {
		buf, err := c.renderFrame(frame)
		if err != nil {
			failures++
			// A brand-new endpoint may not be listening yet; in watch mode
			// tolerate a few misses before giving up.
			if *frames > 0 || failures >= 5 {
				fmt.Fprintf(os.Stderr, "bddtop: %s: %v\n", *addr, err)
				os.Exit(1)
			}
		} else {
			failures = 0
			if !*plain {
				// Home + clear-to-end redraws in place without flicker.
				os.Stdout.WriteString("\x1b[H\x1b[2J")
			}
			os.Stdout.Write(buf)
		}
		if *frames > 0 && frame >= *frames {
			return
		}
		time.Sleep(*interval)
	}
}

type console struct {
	base   string
	client *http.Client
	topK   int
	plain  bool
}

// timeseriesResp mirrors the /timeseries payload.
type timeseriesResp struct {
	Interval string          `json:"interval"`
	Points   []obs.TimePoint `json:"points"`
}

// parallelResp mirrors the /parallel payload.
type parallelResp struct {
	Workers int              `json:"workers"`
	Current *obs.ParSnapshot `json:"current"`
}

func (c *console) get(path string) (io.ReadCloser, error) {
	resp, err := c.client.Get(c.base + path)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return resp.Body, nil
}

func (c *console) getJSON(path string, v any) error {
	body, err := c.get(path)
	if err != nil {
		return err
	}
	defer body.Close()
	return json.NewDecoder(body).Decode(v)
}

// renderFrame polls all four endpoints and renders one frame. /metrics is
// required (its failure aborts the frame); the JSON panels degrade
// gracefully when absent.
func (c *console) renderFrame(frame int) ([]byte, error) {
	body, err := c.get("/metrics")
	if err != nil {
		return nil, err
	}
	scrape, err := obs.ParsePrometheus(body)
	body.Close()
	if err != nil {
		return nil, fmt.Errorf("/metrics: %v", err)
	}
	var quality obs.LedgerSnapshot
	qualityOK := c.getJSON("/quality", &quality) == nil
	var ts timeseriesResp
	tsOK := c.getJSON("/timeseries", &ts) == nil
	var par parallelResp
	parOK := c.getJSON("/parallel", &par) == nil

	var b bytes.Buffer
	c.header(&b, frame, scrape, quality, qualityOK)
	c.gauges(&b, scrape)
	if tsOK && len(ts.Points) > 1 {
		c.trajectories(&b, ts)
	}
	if qualityOK {
		c.qualityPanel(&b, quality)
	}
	if parOK && par.Workers > 1 {
		c.parallelPanel(&b, par)
	}
	return b.Bytes(), nil
}

func (c *console) header(b *bytes.Buffer, frame int, scrape *obs.PromScrape, q obs.LedgerSnapshot, qOK bool) {
	now := time.Now().Format("15:04:05")
	fmt.Fprintf(b, "bddtop  %s  %s  frame %d", c.base, now, frame)
	if qOK {
		fmt.Fprintf(b, "  |  quality ops %d (%d aborted)", q.Ops, q.Aborts)
	}
	if w, ok := scrape.Value("bdd_workers"); ok && w > 0 {
		fmt.Fprintf(b, "  |  %d workers", int(w))
	}
	b.WriteString("\n\n")
}

func (c *console) gauges(b *bytes.Buffer, scrape *obs.PromScrape) {
	live, _ := scrape.Value("bdd_live_nodes")
	dead, _ := scrape.Value("bdd_dead_nodes")
	limit, _ := scrape.Value("bdd_node_limit")
	headroom, hok := scrape.Value("bdd_budget_headroom")
	occ, _ := scrape.Value("bdd_arena_occupancy")
	hit, _ := scrape.Value("bdd_cache_hit_rate")
	gcs, _ := scrape.Value("bdd_gc_total")
	stw, _ := scrape.Value("bdd_stw_time_ns")

	fmt.Fprintf(b, "  nodes   live %-10s dead %-10s", humanCount(live), humanCount(dead))
	if limit > 0 {
		fmt.Fprintf(b, " limit %-10s", humanCount(limit))
		if hok {
			fmt.Fprintf(b, " headroom %s %4.0f%%", bar(headroom, 20), headroom*100)
		}
	} else {
		fmt.Fprintf(b, " limit none")
	}
	b.WriteByte('\n')
	fmt.Fprintf(b, "  engine  arena %4.0f%%       cache-hit %4.0f%%   gc %-6s stw %s\n",
		occ*100, hit*100, humanCount(gcs), time.Duration(stw).Round(time.Millisecond))
	b.WriteByte('\n')
}

// trajectories plots the sampler ring: resource use (live nodes), quality
// (mass retained of the latest op at each sample), and budget headroom.
func (c *console) trajectories(b *bytes.Buffer, ts timeseriesResp) {
	pts := ts.Points
	lives := make([]float64, len(pts))
	mass := make([]float64, len(pts))
	head := make([]float64, len(pts))
	for i, p := range pts {
		lives[i] = float64(p.LiveNodes)
		mass[i] = p.MassRetained
		head[i] = p.BudgetHeadroom
	}
	const width = 48
	fmt.Fprintf(b, "  live nodes    %s  %s\n", spark(lives, width), humanCount(lives[len(lives)-1]))
	fmt.Fprintf(b, "  mass retained %s  %.3f\n", spark(mass, width), mass[len(mass)-1])
	fmt.Fprintf(b, "  headroom      %s  %.0f%%   (%d samples @ %s)\n",
		spark(head, width), head[len(head)-1]*100, len(pts), ts.Interval)
	b.WriteByte('\n')
}

func (c *console) qualityPanel(b *bytes.Buffer, q obs.LedgerSnapshot) {
	if q.Last != nil {
		r := q.Last
		fmt.Fprintf(b, "  last op  %s", r.Key())
		if r.Iter > 0 {
			fmt.Fprintf(b, " iter %d", r.Iter)
		}
		fmt.Fprintf(b, "  %s -> %s nodes  mass %.4f -> %.4f (retained %.4f)",
			humanCount(float64(r.SizeIn)), humanCount(float64(r.SizeOut)),
			r.MassIn, r.MassOut, r.MassRetained)
		if r.Abort != "" {
			fmt.Fprintf(b, "  ABORT: %s", r.Abort)
		}
		b.WriteString("\n\n")
	}
	if q.Ops > 0 {
		indented(b, func(w io.Writer) { q.WriteReport(w) })
		b.WriteByte('\n')
	}
}

func (c *console) parallelPanel(b *bytes.Buffer, par parallelResp) {
	fmt.Fprintf(b, "  parallel  %d workers", par.Workers)
	if cur := par.Current; cur != nil {
		t := cur.Telemetry
		total := t.TasksLocal + t.TasksStolen
		if total > 0 {
			fmt.Fprintf(b, "  tasks %d (%.0f%% stolen)", total,
				100*float64(t.TasksStolen)/float64(total))
		}
		b.WriteByte('\n')
		hot := t.HotLevels
		if len(hot) > 0 {
			sort.Slice(hot, func(i, j int) bool { return hot[i].WaitNS > hot[j].WaitNS })
			k := c.topK
			if k > len(hot) {
				k = len(hot)
			}
			fmt.Fprintf(b, "  hot levels (top %d by wait):", k)
			for _, h := range hot[:k] {
				fmt.Fprintf(b, "  L%d %s/%d", h.Index,
					time.Duration(h.WaitNS).Round(time.Microsecond), h.Hits)
			}
			b.WriteByte('\n')
		}
	} else {
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
}

// spark renders values as a unicode sparkline of at most width cells,
// keeping the most recent points and scaling to the visible min/max.
func spark(vals []float64, width int) string {
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var sb strings.Builder
	for _, v := range vals {
		// A flat series renders mid-level rather than hugging the floor.
		i := len(levels) / 2
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(levels)-1))
		}
		sb.WriteRune(levels[i])
	}
	return sb.String()
}

// bar renders a 0..1 fraction as a fixed-width meter.
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	fill := int(frac*float64(width) + 0.5)
	return "[" + strings.Repeat("#", fill) + strings.Repeat("-", width-fill) + "]"
}

// humanCount renders a count with k/M suffixes.
func humanCount(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// indented writes f's output with a two-space indent per line.
func indented(b *bytes.Buffer, f func(io.Writer)) {
	var tmp bytes.Buffer
	f(&tmp)
	for _, line := range strings.Split(strings.TrimRight(tmp.String(), "\n"), "\n") {
		b.WriteString("  ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
}
