// Command tables regenerates the paper's Tables 1–4.
//
// Usage:
//
//	tables -table all            # everything, test-scale corpus
//	tables -table 2 -paper       # Table 2 on the paper-scale corpus
//	tables -table 1 -budget 60s  # Table 1 with a custom per-run budget
//
// The benchmark trajectory lives in BENCH_reach.json: `tables -table 1
// -bench-save BENCH_reach.json` appends a record after a run, and `tables
// -bench-cmp BENCH_reach.json` diffs the two most recent records, exiting
// nonzero when wall time or peak live nodes regressed beyond tolerance
// (see internal/bench/history.go and `make bench-save` / `make bench-cmp`).
// Records are tagged with the worker count that produced them; after
// saving baselines at -workers 1 and -workers N, `tables -speedup
// BENCH_reach.json` reports the scaling curve (speedup, parallel
// efficiency, and the share of the perfect-scaling gap explained by
// stop-the-world time).
//
// With -obs the run serves the observability endpoint (/metrics in
// Prometheus exposition, /quality, /timeseries, /parallel) for scrapers
// and for `bddtop`; Table 1 method rows additionally capture the quality
// ledger's per-method delta (operation count, aborts, mean/min mass
// retained) into the JSON benchmark records.
//
// See EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bddkit/internal/bdd"
	"bddkit/internal/bench"
	"bddkit/internal/cliutil"
	"bddkit/internal/model"
	"bddkit/internal/obs"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: 1, 2, 3, 4, ablation, gauntlet, or all")
	paper := flag.Bool("paper", false, "use the paper-scale corpus and circuits (slower)")
	budget := flag.Duration("budget", 2*time.Minute, "per-traversal budget for Table 1")
	jsonOut := flag.String("json", "", "also write Table 1 rows with per-phase breakdowns as JSON to this `file` (\"-\" = stdout)")
	benchSave := flag.String("bench-save", "", "append this run's Table 1 rows to the benchmark history `file` (see `make bench-save`)")
	benchCmp := flag.String("bench-cmp", "", "compare the two most recent records of the benchmark history `file` and exit (no tables are run)")
	benchAdvisory := flag.Bool("bench-advisory", false, "with -bench-cmp or -speedup: report findings but exit 0")
	speedup := flag.String("speedup", "", "report the speedup curve (serial vs workers-tagged records) of the benchmark history `file` and exit")
	workers := flag.Int("workers", 1, "BDD engine worker goroutines (1 = serial reference engine, 0 = GOMAXPROCS)")
	var ocfg obs.Config
	ocfg.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := cliutil.Check(
		cliutil.Workers(*workers),
		cliutil.NonNegativeDuration("budget", *budget),
	); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(2)
	}
	bdd.SetDefaultWorkers(*workers)

	if *benchCmp != "" {
		os.Exit(runBenchCmp(*benchCmp, *benchAdvisory))
	}
	if *speedup != "" {
		os.Exit(runSpeedup(*speedup, *benchAdvisory))
	}

	switch *table {
	case "1", "2", "3", "4", "ablation", "gauntlet", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
	if *benchSave != "" && *table != "1" && *table != "all" {
		fmt.Fprintln(os.Stderr, "-bench-save records Table 1 rows; use -table 1 (or all)")
		os.Exit(2)
	}
	sess := ocfg.MustStart()
	defer sess.Close()
	defer sess.DumpOnPanic()

	var fns []bench.Fn
	needCorpus := *table != "1" && *table != "gauntlet"
	if needCorpus {
		cfg := bench.SmallCorpus()
		if *paper {
			cfg = bench.PaperCorpus()
		}
		fmt.Fprintf(os.Stderr, "building corpus (min %d nodes)...\n", cfg.MinNodes)
		start := time.Now()
		var err error
		fns, err = bench.Build(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "corpus: %d functions in %v\n", len(fns), time.Since(start).Round(time.Millisecond))
		defer bench.Release(fns)
	}

	if *table == "1" || *table == "all" {
		cfg := bench.Table1Small()
		if *paper {
			cfg = bench.Table1Paper(*budget)
		}
		cfg.Observe = sess.ObserveManager
		rows, err := bench.RunTable1(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("Table 1: Reachability analysis results using BDD approximations.")
		bench.PrintTable1(os.Stdout, rows)
		fmt.Println()
		if *benchSave != "" {
			suite := "table1-small"
			if *paper {
				suite = "table1-paper"
			}
			rec := bench.HistoryRecord{Suite: suite, Workers: bdd.DefaultWorkers(), Rows: rows}
			if err := bench.AppendHistory(*benchSave, rec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "bench-save: appended %s record (workers=%d) to %s\n",
				suite, rec.Workers, *benchSave)
		}
		if *jsonOut != "" {
			w := os.Stdout
			if *jsonOut != "-" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				defer f.Close()
				w = f
			}
			if err := bench.WriteTable1JSON(w, rows); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if *table == "gauntlet" || *table == "all" {
		gcfg := bench.DefaultGauntletConfig()
		gcfg.Observe = sess.ObserveManager
		rows, err := bench.RunGauntlet(gcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("Gauntlet: generator families, exact counts, and subset mass retention.")
		bench.PrintGauntlet(os.Stdout, rows)
		fmt.Println()
		if *jsonOut != "" && *table == "gauntlet" {
			w := os.Stdout
			if *jsonOut != "-" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				defer f.Close()
				w = f
			}
			if err := bench.WriteGauntletJSON(w, rows); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if *table == "2" || *table == "all" {
		fmt.Println("Table 2: Comparison of approximation methods I: Simple methods.")
		bench.PrintApprox(os.Stdout, "simple methods", bench.Table2(fns))
		fmt.Println()
	}
	if *table == "3" || *table == "all" {
		fmt.Println("Table 3: Comparison of approximation methods II: Compound methods.")
		bench.PrintApprox(os.Stdout, "compound methods", bench.Table3(fns))
		fmt.Println()
	}
	if *table == "ablation" || *table == "all" {
		fmt.Println("Ablation A: RUA replacement types (Section 2.1.1).")
		bench.PrintApprox(os.Stdout, "replacement-type ablation", bench.AblationRUA(fns))
		fmt.Println()
		fmt.Println("Ablation B: decomposition combine-step pairing.")
		bench.PrintPairing(os.Stdout, bench.AblationDecompPairing(fns))
		fmt.Println()
		fmt.Println("Ablation C: transition-relation cluster threshold (s5378 model, 12 BFS iterations).")
		cfgC := model.S5378(model.S5378Config{Units: 5, UnitWidth: 4})
		rows, err := bench.AblationClusterSize(cfgC, []int{1, 500, 2500, 10000, 1 << 20}, 12)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		bench.PrintClusters(os.Stdout, rows)
		fmt.Println()
	}
	if *table == "4" || *table == "all" {
		fmt.Println("Table 4: Comparison of decomposition methods.")
		min1 := 5000
		if !*paper {
			min1 = bench.SmallCorpus().MinNodes
		}
		bench.PrintDecomp(os.Stdout, min1, bench.Table4(fns, min1))
		if *paper {
			bench.PrintDecomp(os.Stdout, bench.BigCorpusThreshold, bench.Table4(fns, bench.BigCorpusThreshold))
		}
		fmt.Println()
	}
}

// runBenchCmp implements -bench-cmp: compare the most recent history
// record against the latest earlier record of the same suite and worker
// count (serial and parallel trajectories are tracked separately — their
// peak-node profiles differ by construction) and report regressions.
// Advisory mode always exits 0 so CI can surface drift without failing on
// noisy machines.
func runBenchCmp(path string, advisory bool) int {
	h, err := bench.LoadHistory(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	prev, cur, ok := h.LatestComparable()
	if !ok {
		if cur != nil {
			fmt.Fprintf(os.Stderr, "bench-cmp: %s has no earlier record matching the latest one (suite %s, workers=%d); nothing comparable yet\n",
				path, cur.Suite, cur.Workers)
		} else {
			fmt.Fprintf(os.Stderr, "bench-cmp: %s holds %d record(s); need 2 (run `make bench-save` twice)\n",
				path, len(h.Records))
		}
		if advisory {
			return 0
		}
		return 1
	}
	n := bench.WriteComparison(os.Stdout, prev, cur)
	if n > 0 && !advisory {
		return 1
	}
	return 0
}

// runSpeedup implements -speedup: derive the scaling curve from the
// workers-tagged records of the history and fail (unless advisory) when no
// serial/parallel pair exists — a CI leg that silently compares nothing
// would report "no regressions" forever.
func runSpeedup(path string, advisory bool) int {
	h, err := bench.LoadHistory(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	points := bench.SpeedupCurves(h)
	if bench.WriteSpeedup(os.Stdout, points) == 0 && !advisory {
		return 1
	}
	return 0
}
