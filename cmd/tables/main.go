// Command tables regenerates the paper's Tables 1–4.
//
// Usage:
//
//	tables -table all            # everything, test-scale corpus
//	tables -table 2 -paper       # Table 2 on the paper-scale corpus
//	tables -table 1 -budget 60s  # Table 1 with a custom per-run budget
//
// See EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bddkit/internal/bench"
	"bddkit/internal/model"
	"bddkit/internal/obs"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: 1, 2, 3, 4, ablation, or all")
	paper := flag.Bool("paper", false, "use the paper-scale corpus and circuits (slower)")
	budget := flag.Duration("budget", 2*time.Minute, "per-traversal budget for Table 1")
	jsonOut := flag.String("json", "", "also write Table 1 rows with per-phase breakdowns as JSON to this `file` (\"-\" = stdout)")
	var ocfg obs.Config
	ocfg.AddFlags(flag.CommandLine)
	flag.Parse()

	switch *table {
	case "1", "2", "3", "4", "ablation", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
	sess := ocfg.MustStart()
	defer sess.Close()
	defer sess.DumpOnPanic()

	var fns []bench.Fn
	needCorpus := *table != "1"
	if needCorpus {
		cfg := bench.SmallCorpus()
		if *paper {
			cfg = bench.PaperCorpus()
		}
		fmt.Fprintf(os.Stderr, "building corpus (min %d nodes)...\n", cfg.MinNodes)
		start := time.Now()
		var err error
		fns, err = bench.Build(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "corpus: %d functions in %v\n", len(fns), time.Since(start).Round(time.Millisecond))
		defer bench.Release(fns)
	}

	if *table == "1" || *table == "all" {
		cfg := bench.Table1Small()
		if *paper {
			cfg = bench.Table1Paper(*budget)
		}
		rows, err := bench.RunTable1(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("Table 1: Reachability analysis results using BDD approximations.")
		bench.PrintTable1(os.Stdout, rows)
		fmt.Println()
		if *jsonOut != "" {
			w := os.Stdout
			if *jsonOut != "-" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				defer f.Close()
				w = f
			}
			if err := bench.WriteTable1JSON(w, rows); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if *table == "2" || *table == "all" {
		fmt.Println("Table 2: Comparison of approximation methods I: Simple methods.")
		bench.PrintApprox(os.Stdout, "simple methods", bench.Table2(fns))
		fmt.Println()
	}
	if *table == "3" || *table == "all" {
		fmt.Println("Table 3: Comparison of approximation methods II: Compound methods.")
		bench.PrintApprox(os.Stdout, "compound methods", bench.Table3(fns))
		fmt.Println()
	}
	if *table == "ablation" || *table == "all" {
		fmt.Println("Ablation A: RUA replacement types (Section 2.1.1).")
		bench.PrintApprox(os.Stdout, "replacement-type ablation", bench.AblationRUA(fns))
		fmt.Println()
		fmt.Println("Ablation B: decomposition combine-step pairing.")
		bench.PrintPairing(os.Stdout, bench.AblationDecompPairing(fns))
		fmt.Println()
		fmt.Println("Ablation C: transition-relation cluster threshold (s5378 model, 12 BFS iterations).")
		cfgC := model.S5378(model.S5378Config{Units: 5, UnitWidth: 4})
		rows, err := bench.AblationClusterSize(cfgC, []int{1, 500, 2500, 10000, 1 << 20}, 12)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		bench.PrintClusters(os.Stdout, rows)
		fmt.Println()
	}
	if *table == "4" || *table == "all" {
		fmt.Println("Table 4: Comparison of decomposition methods.")
		min1 := 5000
		if !*paper {
			min1 = bench.SmallCorpus().MinNodes
		}
		bench.PrintDecomp(os.Stdout, min1, bench.Table4(fns, min1))
		if *paper {
			bench.PrintDecomp(os.Stdout, bench.BigCorpusThreshold, bench.Table4(fns, bench.BigCorpusThreshold))
		}
		fmt.Println()
	}
}
