// Command bddlab applies the paper's approximation and decomposition
// algorithms to the outputs of a netlist and reports sizes, minterm counts
// and densities — a workbench for exploring the algorithms on your own
// circuits.
//
// Usage:
//
//	bddlab -in circuit.net                      # stats for every output
//	bddlab -in circuit.net -out y3 -approx rua  # approximate one output
//	bddlab -in circuit.net -out y3 -decomp band # decompose one output
//	bddlab -in circuit.net -out y3 -dot f.dot   # Graphviz dump
//
// The netlist format is the BLIF-flavored text format of
// internal/circuit/parse.go (see README). Approximation and decomposition
// runs file quality-ledger records (mass retained, nodes shed, budget
// headroom); start with -obs :6060 to expose them on /metrics and
// /quality, or pass -metrics for the end-of-run ledger table.
package main

import (
	"flag"
	"fmt"
	"os"

	"bddkit/internal/approx"
	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/cliutil"
	"bddkit/internal/decomp"
	"bddkit/internal/obs"
	"bddkit/internal/prof"
)

// sess is the observability session, started from the -trace/-metrics/-obs
// flags; package-level so fatal can flush it before exiting.
var sess *obs.Session

func main() {
	in := flag.String("in", "", "input netlist file (required)")
	out := flag.String("out", "", "output signal to operate on (default: all, stats only)")
	doApprox := flag.String("approx", "", "approximation: hb, sp, ua, rua, c1, c2")
	threshold := flag.Int("threshold", 0, "approximation size threshold (0 = unrestricted)")
	quality := flag.Float64("quality", 1.0, "RUA quality factor")
	doDecomp := flag.String("decomp", "", "decomposition: cofactor, band, disjoint, mcmillan")
	dot := flag.String("dot", "", "write the (approximated) BDD in Graphviz format to this file")
	save := flag.String("save", "", "persist the (approximated) BDD to this file (bddkit-bdd format)")
	profile := flag.String("profile", "", "print a structural profile: text or json (with -out: of that BDD after -approx; without: of every live root)")
	static := flag.Bool("static", false, "compile with the DFS static variable order")
	cacheBits := flag.Uint("cache-bits", 0, "initial computed-table size = 1<<bits (0 = default)")
	cacheMaxBits := flag.Uint("cache-max-bits", 0, "adaptive computed-table growth ceiling = 1<<bits (0 = default)")
	stats := flag.Bool("stats", false, "print computed-cache and unique-table statistics on exit")
	workers := flag.Int("workers", 1, "BDD engine worker goroutines (1 = serial reference engine, 0 = GOMAXPROCS)")
	var ocfg obs.Config
	ocfg.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := cliutil.Check(
		cliutil.Workers(*workers),
		cliutil.CacheBits("cache-bits", *cacheBits),
		cliutil.CacheBits("cache-max-bits", *cacheMaxBits),
		cliutil.NonNegative("threshold", *threshold),
	); err != nil {
		fmt.Fprintln(os.Stderr, "bddlab:", err)
		os.Exit(2)
	}
	bdd.SetDefaultWorkers(*workers)
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	sess = ocfg.MustStart()
	defer sess.Close()
	defer sess.DumpOnPanic()

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	nl, err := circuit.Parse(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	opts := circuit.CompileOptions{
		SkipNextVars: len(nl.Latches) == 0,
		StaticOrder:  *static,
	}
	if *cacheBits != 0 || *cacheMaxBits != 0 {
		cfg := bdd.DefaultConfig()
		if *cacheBits != 0 {
			cfg.CacheBits = *cacheBits
		}
		if *cacheMaxBits != 0 {
			cfg.CacheMaxBits = *cacheMaxBits
		}
		opts.BDDConfig = &cfg
	}
	c, err := circuit.Compile(nl, opts)
	if err != nil {
		fatal(err)
	}
	m := c.M
	sess.ObserveManager(m)
	if *stats {
		defer func() {
			fmt.Println(m.CacheStats())
			fmt.Println(m.UniqueStats())
		}()
	}

	report := func(label string, g bdd.Ref) {
		fmt.Printf("%-24s |f| = %-8d ||f|| = %-14.6g density = %.6g\n",
			label, m.DagSize(g), m.CountMinterm(g, m.NumVars()), approx.Density(m, g))
	}

	if *profile != "" && *profile != "text" && *profile != "json" {
		fatal(fmt.Errorf("unknown -profile mode %q (want text or json)", *profile))
	}

	if *out == "" {
		for i, g := range c.Outputs {
			report(nl.OutName[i], g)
		}
		if *profile != "" {
			// Profile the forest of every live root and cross-check it
			// against the manager's own live-node accounting.
			m.GarbageCollect() // drop compile intermediates so live == referenced
			p := prof.Compute(m, c.LiveRoots(), prof.Options{PathHist: false})
			if err := writeProfile(p, *profile); err != nil {
				fatal(err)
			}
			fmt.Printf("profile covers %d nodes; manager accounts %d live\n",
				p.TotalNodes(), m.NodeCount())
		}
		return
	}

	var target bdd.Ref
	found := false
	for i, name := range nl.OutName {
		if name == *out {
			target = c.Outputs[i]
			found = true
			break
		}
	}
	if !found {
		fatal(fmt.Errorf("output %q not found", *out))
	}
	report(*out, target)

	result := target
	if *doApprox != "" {
		var g bdd.Ref
		switch *doApprox {
		case "hb":
			g = approx.HeavyBranch(m, target, *threshold)
		case "sp":
			g = approx.ShortPaths(m, target, *threshold)
		case "ua":
			g = approx.UnderApprox(m, target, *threshold, 0.5)
		case "rua":
			g = approx.RemapUnderApprox(m, target, *threshold, *quality)
		case "c1":
			g = approx.Compound1(m, target, *threshold, *quality)
		case "c2":
			g = approx.Compound2(m, target, *threshold, *quality)
		default:
			fatal(fmt.Errorf("unknown approximation %q", *doApprox))
		}
		report(*doApprox+"("+*out+")", g)
		if !m.Leq(g, target) {
			fatal(fmt.Errorf("internal error: result is not an underapproximation"))
		}
		result = g
	}

	if *doDecomp != "" {
		switch *doDecomp {
		case "cofactor":
			p := decomp.Cofactor(m, target)
			reportPair(m, p)
		case "band":
			p := decomp.Decompose(m, target, decomp.BandPoints(m, target, decomp.DefaultBandConfig()))
			reportPair(m, p)
		case "disjoint":
			p := decomp.Decompose(m, target, decomp.DisjointPoints(m, target, decomp.DefaultDisjointConfig()))
			reportPair(m, p)
		case "mcmillan":
			fs := decomp.McMillan(m, target)
			fmt.Printf("mcmillan: %d factors, shared size %d\n", len(fs), m.SharingSize(fs))
			for i, fi := range fs {
				fmt.Printf("  f%-3d |f| = %d\n", i, m.DagSize(fi))
			}
		default:
			fatal(fmt.Errorf("unknown decomposition %q", *doDecomp))
		}
	}

	// nodeProfile is the single-root profile of the (possibly approximated)
	// target; computed once and shared by -profile output and -dot coloring.
	var nodeProfile *prof.Profile
	if *profile != "" || *dot != "" {
		nodeProfile = prof.For(m, result)
	}
	if *profile != "" {
		if err := writeProfile(nodeProfile, *profile); err != nil {
			fatal(err)
		}
	}

	if *save != "" {
		w, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := m.Save(w, []string{*out}, []bdd.Ref{result}); err != nil {
			fatal(err)
		}
		w.Close()
		fmt.Printf("saved %s\n", *save)
	}

	if *dot != "" {
		w, err := os.Create(*dot)
		if err != nil {
			fatal(err)
		}
		dopts := bdd.DotOptions{NodeColor: nodeProfile.DotColor}
		if err := m.DumpDotStyled(w, []string{*out}, []bdd.Ref{result}, dopts); err != nil {
			fatal(err)
		}
		w.Close()
		fmt.Printf("wrote %s\n", *dot)
	}
}

func writeProfile(p *prof.Profile, mode string) error {
	if mode == "json" {
		return p.WriteJSON(os.Stdout)
	}
	p.WriteText(os.Stdout)
	return nil
}

func reportPair(m *bdd.Manager, p decomp.Pair) {
	fmt.Printf("factors: |G| = %d, |H| = %d, shared = %d\n",
		m.DagSize(p.G), m.DagSize(p.H), p.SharedSize(m))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bddlab:", err)
	sess.Close() // os.Exit skips defers; flush the trace explicitly
	os.Exit(1)
}
