// Command equiv checks combinational equivalence of two netlists with
// BDDs: inputs and outputs are matched by name, and a mismatch comes with
// a concrete distinguishing input assignment.
//
// Usage:
//
//	equiv golden.net revised.net
//
// The standard observability flags apply: -trace writes a JSONL trace,
// -obs serves /metrics (Prometheus), /quality and /timeseries (watch with
// bddtop), and -metrics prints the end-of-run tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/cliutil"
	"bddkit/internal/obs"
)

// sess is the observability session; package-level so fatal can flush it.
var sess *obs.Session

func main() {
	workers := flag.Int("workers", 1, "BDD engine worker goroutines (1 = serial reference engine, 0 = GOMAXPROCS)")
	var ocfg obs.Config
	ocfg.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := cliutil.Workers(*workers); err != nil {
		fmt.Fprintln(os.Stderr, "equiv:", err)
		os.Exit(2)
	}
	bdd.SetDefaultWorkers(*workers)
	if flag.NArg() != 2 {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] golden.net revised.net\n", os.Args[0])
		os.Exit(2)
	}
	sess = ocfg.MustStart()
	defer sess.Close()
	defer sess.DumpOnPanic()
	a, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	ok, mm, err := circuit.Equivalent(a, b)
	if err != nil {
		fatal(err)
	}
	if ok {
		fmt.Printf("EQUIVALENT: %s == %s (%d outputs)\n", a.Name, b.Name, len(a.Outputs))
		return
	}
	fmt.Printf("NOT EQUIVALENT: output %s differs\n", mm.Output)
	names := make([]string, 0, len(mm.Inputs))
	for n := range mm.Inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("distinguishing assignment:")
	for _, n := range names {
		v := 0
		if mm.Inputs[n] {
			v = 1
		}
		fmt.Printf("  %s = %d\n", n, v)
	}
	sess.Close() // os.Exit skips defers
	os.Exit(1)
}

func load(path string) (*circuit.Netlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return circuit.Parse(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "equiv:", err)
	sess.Close() // os.Exit skips defers
	os.Exit(1)
}
