// Command reach runs symbolic reachability analysis on the built-in
// benchmark models (or a netlist file) with the traversal strategies of
// the paper's Table 1.
//
// Usage:
//
//	reach -model am2910 -method hd-rua
//	reach -model s5378 -scale full -method bfs -budget 5m
//	reach -in mydesign.net -method hd-sp -threshold 2000
//	reach -model counter -method bfs -trace trace.jsonl -obs :6060
//
// With -obs the run serves the observability endpoint (Prometheus
// /metrics, the /quality approximation-loss ledger, /timeseries gauge
// trajectories sampled every -obs-sample, and /parallel); watch it live
// with `bddtop -addr localhost:6060`. Every traversal iteration files a
// quality.op ledger record (fresh mass discovered, mass the subsetted
// frontier kept, budget headroom), summarized at exit by -metrics.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/cliutil"
	"bddkit/internal/model"
	"bddkit/internal/obs"
	"bddkit/internal/reach"
)

func main() { os.Exit(run()) }

func run() int {
	mdl := flag.String("model", "", "built-in model: am2910, s1269, s3330, s5378, or counter")
	in := flag.String("in", "", "netlist file (alternative to -model)")
	scale := flag.String("scale", "small", "model scale: small, table1, full")
	method := flag.String("method", "bfs", "traversal: bfs, hd-rua, hd-sp, hd-hb")
	threshold := flag.Int("threshold", 0, "frontier subset threshold (HD)")
	quality := flag.Float64("quality", 1.0, "RUA quality factor (HD)")
	pimgLimit := flag.Int("pimg-limit", 0, "partial-image trigger size (0 = exact images)")
	pimgTh := flag.Int("pimg-threshold", 0, "partial-image subset size")
	budget := flag.Duration("budget", 5*time.Minute, "wall-clock budget")
	cluster := flag.Int("cluster", 2500, "transition-relation cluster threshold")
	stats := flag.Bool("stats", false, "print computed-cache and unique-table statistics after a successful run (stderr)")
	profile := flag.Bool("profile", false, "emit per-iteration frontier/reached structural profiles as reach.profile trace events (needs -trace)")
	workers := flag.Int("workers", 1, "BDD engine worker goroutines (1 = serial reference engine, 0 = GOMAXPROCS)")
	var ocfg obs.Config
	ocfg.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := cliutil.Check(
		cliutil.Workers(*workers),
		cliutil.NonNegative("threshold", *threshold),
		cliutil.NonNegative("pimg-limit", *pimgLimit),
		cliutil.NonNegative("pimg-threshold", *pimgTh),
		cliutil.NonNegativeDuration("budget", *budget),
		cliutil.Positive("cluster", *cluster),
	); err != nil {
		fmt.Fprintln(os.Stderr, "reach:", err)
		os.Exit(2)
	}
	bdd.SetDefaultWorkers(*workers)

	// Validate every flag before doing any work: a bad -method must not
	// cost a circuit compilation (and must not print statistics).
	var sub reach.Subsetter
	switch *method {
	case "bfs":
	case "hd-rua":
		sub = reach.RUASubsetter(*quality)
	case "hd-sp":
		sub = reach.SPSubsetter()
	case "hd-hb":
		sub = reach.HBSubsetter()
	default:
		fmt.Fprintf(os.Stderr, "reach: unknown method %q\n", *method)
		return 2
	}
	nl, err := pickModel(*mdl, *in, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reach:", err)
		return 2
	}

	sess := ocfg.MustStart()
	defer sess.Close()
	defer sess.DumpOnPanic()

	fmt.Printf("circuit %s: %d inputs, %d flip-flops, %d gates\n",
		nl.Name, len(nl.Inputs), len(nl.Latches), nl.NumGates())

	c, err := circuit.Compile(nl, circuit.CompileOptions{AutoReorder: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reach:", err)
		return 1
	}
	sess.ObserveManager(c.M)
	tr, err := reach.NewTR(c, reach.TROptions{ClusterSize: *cluster})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reach:", err)
		return 1
	}
	fmt.Printf("transition relation: %d clusters\n", len(tr.Clusters))

	opts := reach.Options{Threshold: *threshold, Budget: *budget, Profile: *profile}
	if *pimgLimit > 0 && sub != nil {
		opts.PImg = &reach.PImg{Limit: *pimgLimit, Threshold: *pimgTh, Subset: sub}
	}

	var res reach.Result
	if sub == nil {
		res = tr.BFS(c.Init, opts)
	} else {
		opts.Subset = sub
		res = tr.HighDensity(c.Init, opts)
	}

	status := "completed"
	if !res.Completed {
		status = "BUDGET EXHAUSTED (lower bound)"
	}
	fmt.Printf("%s: %s\n", *method, status)
	fmt.Printf("  states      %.6g\n", res.States)
	if res.StatesExact != nil {
		fmt.Printf("  exact       %s states\n", res.StatesExact)
	}
	fmt.Printf("  |reached|   %d nodes\n", res.Nodes)
	fmt.Printf("  iterations  %d (+%d closure checks)\n", res.Iterations, res.Closure)
	fmt.Printf("  images      %d (%d AndExists, %d partial-image cuts)\n",
		res.Stats.Images, res.Stats.AndExists, res.Stats.PImgCuts)
	fmt.Printf("  peak        %d live nodes, %d largest product\n",
		res.Stats.PeakLiveNodes, res.Stats.PeakProduct)
	if res.Stats.CacheLookups > 0 {
		fmt.Printf("  cache       %.1f%% hit rate (%d lookups)\n",
			100*float64(res.Stats.CacheHits)/float64(res.Stats.CacheLookups),
			res.Stats.CacheLookups)
	}
	fmt.Printf("  time        %v (image %v, subset %v, closure %v)\n",
		res.Elapsed.Round(time.Millisecond),
		res.Stats.ImageTime.Round(time.Millisecond),
		res.Stats.SubsetTime.Round(time.Millisecond),
		res.Stats.ClosureTime.Round(time.Millisecond))
	if *stats {
		// Diagnostics go to stderr, after the run: error paths above never
		// reach this point, so a failed invocation prints no statistics.
		fmt.Fprintln(os.Stderr, c.M.CacheStats())
		fmt.Fprintln(os.Stderr, c.M.UniqueStats())
	}
	c.M.Deref(res.Reached)
	tr.Release()
	c.Release()
	return 0
}

func pickModel(mdl, in, scale string) (*circuit.Netlist, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return circuit.Parse(f)
	}
	switch mdl {
	case "am2910":
		switch scale {
		case "small":
			return model.Am2910(model.Am2910Small()), nil
		case "table1":
			return model.Am2910(model.Am2910Config{Width: 8, StackDepth: 3, WithROM: true, RomSeed: 7}), nil
		default:
			return model.Am2910(model.Am2910Full()), nil
		}
	case "s1269":
		if scale == "small" {
			return model.S1269(model.S1269Small()), nil
		}
		return model.S1269(model.S1269Full()), nil
	case "s3330":
		if scale == "small" {
			return model.S3330(model.S3330Small()), nil
		}
		return model.S3330(model.S3330Full()), nil
	case "s5378":
		switch scale {
		case "small":
			return model.S5378(model.S5378Small()), nil
		case "table1":
			return model.S5378(model.S5378Config{Units: 6, UnitWidth: 5}), nil
		default:
			return model.S5378(model.S5378Full()), nil
		}
	case "counter":
		b := circuit.NewBuilder("counter16")
		en := b.Input("en")
		q := b.LatchBus("q", 16, 0)
		inc, _ := b.Incrementer(q)
		b.SetNextBus(q, b.MuxBus(en, inc, q))
		b.Output("tc", b.EqConst(q, 0xFFFF))
		return b.MustBuild(), nil
	case "":
		return nil, fmt.Errorf("one of -model or -in is required")
	}
	return nil, fmt.Errorf("unknown model %q", mdl)
}
