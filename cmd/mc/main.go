// Command mc model-checks CTL formulas over a netlist's state space.
// Atomic propositions are the latch output names (true when the latch
// holds 1).
//
// Usage:
//
//	mc -model am2910 -ctl "AG EF (sp0 | !sp0)"
//	mc -in design.net -ctl "AG(req -> AF ack)" -reachable
//
// The standard observability flags apply: -trace writes a JSONL trace,
// -obs serves /metrics (Prometheus), /quality, /timeseries and /parallel
// (watch with bddtop), and -metrics prints the end-of-run counter and
// quality-ledger tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/cliutil"
	"bddkit/internal/mc"
	"bddkit/internal/model"
	"bddkit/internal/obs"
	"bddkit/internal/reach"
)

// sess is the observability session; package-level so fatal can flush it.
var sess *obs.Session

func main() {
	mdl := flag.String("model", "", "built-in model: am2910, s1269, s3330, s5378")
	in := flag.String("in", "", "netlist file (alternative to -model)")
	ctl := flag.String("ctl", "", "CTL formula (required)")
	reachable := flag.Bool("reachable", false, "restrict to reachable states first")
	budget := flag.Duration("budget", 2*time.Minute, "reachability budget with -reachable")
	workers := flag.Int("workers", 1, "BDD engine worker goroutines (1 = serial reference engine, 0 = GOMAXPROCS)")
	var ocfg obs.Config
	ocfg.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := cliutil.Check(
		cliutil.Workers(*workers),
		cliutil.NonNegativeDuration("budget", *budget),
	); err != nil {
		fmt.Fprintln(os.Stderr, "mc:", err)
		os.Exit(2)
	}
	bdd.SetDefaultWorkers(*workers)
	if *ctl == "" {
		flag.Usage()
		os.Exit(2)
	}
	sess = ocfg.MustStart()
	defer sess.Close()
	defer sess.DumpOnPanic()

	nl, err := pickModel(*mdl, *in)
	if err != nil {
		fatal(err)
	}
	f, err := mc.Parse(*ctl)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("circuit %s (%d FFs), formula %s\n", nl.Name, len(nl.Latches), f)

	c, err := circuit.Compile(nl, circuit.CompileOptions{AutoReorder: true})
	if err != nil {
		fatal(err)
	}
	sess.ObserveManager(c.M)
	tr, err := reach.NewTR(c, reach.DefaultTROptions())
	if err != nil {
		fatal(err)
	}
	ck := mc.NewChecker(c, tr, nil)
	ck.DefineLatchAtoms()
	if *reachable {
		states, err := ck.RestrictToReachable(reach.Options{Budget: *budget})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("restricted to %.6g reachable states\n", states)
	}
	sat, err := ck.Sat(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("|Sat| = %d nodes, %.6g states\n", c.M.DagSize(sat), tr.StateCount(sat))
	holds, err := ck.Holds(f)
	if err != nil {
		fatal(err)
	}
	if holds {
		fmt.Println("PASS: every initial state satisfies the formula")
	} else {
		fmt.Println("FAIL: some initial state violates the formula")
		sess.Close() // os.Exit skips defers
		os.Exit(1)
	}
	c.M.Deref(sat)
	ck.Release()
	tr.Release()
	c.Release()
}

func pickModel(mdl, in string) (*circuit.Netlist, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return circuit.Parse(f)
	}
	switch mdl {
	case "am2910":
		return model.Am2910(model.Am2910Small()), nil
	case "s1269":
		return model.S1269(model.S1269Small()), nil
	case "s3330":
		return model.S3330(model.S3330Small()), nil
	case "s5378":
		return model.S5378(model.S5378Small()), nil
	case "":
		return nil, fmt.Errorf("one of -model or -in is required")
	}
	return nil, fmt.Errorf("unknown model %q", mdl)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mc:", err)
	sess.Close() // os.Exit skips defers
	os.Exit(1)
}
