// Command bddcount builds a gauntlet benchmark instance (N-Queens, Game
// of Life predecessors, Hamiltonian cycles, adder-equivalence miters) and
// runs exact model counting over it: #SAT as an arbitrary-precision
// integer, weighted counting under per-variable probabilities, or uniform
// satisfying-assignment sampling.
//
// Usage:
//
//	bddcount -family queens -n 8                       # exact solution count
//	bddcount -family queens -n 8 -check                # ...verified against the published sequence
//	bddcount -family life -rows 4 -cols 4 -mode weighted -bias 0.25
//	bddcount -family hamilton-grid -rows 3 -cols 4 -mode sample -samples 5
//	bddcount -family equiv-adder -n 16 -fault -workers 4
//
// With -obs the run serves the observability endpoint; counting and
// sampling file quality-ledger records (kind "count"), where a sampling
// run's mass-in is the solution fraction of the space and mass-out the
// fraction of distinct solutions actually drawn — a coverage measure.
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"
	"strings"
	"time"

	"bddkit/internal/bdd"
	"bddkit/internal/cliutil"
	"bddkit/internal/count"
	"bddkit/internal/model/gauntlet"
	"bddkit/internal/obs"
	"bddkit/internal/oracle"
)

func main() { os.Exit(run()) }

func run() int {
	family := flag.String("family", "queens", "instance family: "+strings.Join(gauntlet.Families(), ", "))
	n := flag.Int("n", 6, "board size (queens) or adder width (equiv-adder)")
	rows := flag.Int("rows", 3, "board rows (life, hamilton-*)")
	cols := flag.Int("cols", 3, "board cols (life, hamilton-*)")
	fault := flag.Bool("fault", false, "inject the stuck-at-0 carry fault (equiv-adder)")
	mode := flag.String("mode", "count", "operation: count, weighted, sample")
	samples := flag.Int("samples", 10, "assignments to draw (sample mode)")
	seed := flag.Int64("seed", 1, "sampling RNG seed")
	bias := flag.Float64("bias", 0.5, "per-variable true-probability (weighted mode)")
	check := flag.Bool("check", false, "verify the count against the family's independent ground truth")
	workers := flag.Int("workers", 1, "BDD engine worker goroutines (1 = serial reference engine, 0 = GOMAXPROCS)")
	var ocfg obs.Config
	ocfg.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := cliutil.Check(
		cliutil.Workers(*workers),
		cliutil.NonNegative("samples", *samples),
		cliutil.Fraction("bias", *bias),
	); err != nil {
		fmt.Fprintln(os.Stderr, "bddcount:", err)
		return 2
	}
	bdd.SetDefaultWorkers(*workers)

	p := gauntlet.Params{Family: *family, N: *n, Rows: *rows, Cols: *cols, Fault: *fault}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "bddcount:", err)
		return 2
	}
	switch *mode {
	case "count", "weighted", "sample":
	default:
		fmt.Fprintf(os.Stderr, "bddcount: unknown mode %q\n", *mode)
		return 2
	}

	sess := ocfg.MustStart()
	defer sess.Close()
	defer sess.DumpOnPanic()

	start := time.Now()
	m, f, err := gauntlet.New(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bddcount:", err)
		return 1
	}
	sess.ObserveManager(m)
	nodes := m.DagSize(f)
	fmt.Printf("%s: %d variables, %d nodes (built in %v)\n",
		p.Name(), p.Vars(), nodes, time.Since(start).Round(time.Millisecond))

	countStart := time.Now()
	total, err := count.Minterms(m, f, p.Vars())
	if err != nil {
		fmt.Fprintln(os.Stderr, "bddcount:", err)
		return 1
	}
	countDur := time.Since(countStart)
	fmt.Printf("count: %s solutions (%v)\n", total, countDur.Round(time.Microsecond))
	recordCount(p, nodes, total, countDur)

	if *check {
		want, ok := oracle.ExpectedCount(p)
		if !ok {
			fmt.Fprintf(os.Stderr, "bddcount: no independent ground truth in range for %s\n", p.Name())
			return 1
		}
		if total.Cmp(want) != 0 {
			fmt.Fprintf(os.Stderr, "bddcount: CHECK FAILED: counted %s, ground truth %s\n", total, want)
			return 1
		}
		fmt.Printf("check: matches independent ground truth (%s)\n", want)
	}

	switch *mode {
	case "weighted":
		w := count.Weighted(m, f, func(int) float64 { return *bias })
		fmt.Printf("weighted: P[f=1] = %.9g at per-variable bias %v\n", w, *bias)
	case "sample":
		if err := runSampling(m, f, p, total, *samples, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "bddcount:", err)
			return 1
		}
	}
	m.Deref(f)
	return 0
}

// runSampling draws and prints assignments, tracking distinct-solution
// coverage for the ledger record.
func runSampling(m *bdd.Manager, f bdd.Ref, p gauntlet.Params, total *big.Int, samples int, seed int64) error {
	start := time.Now()
	s, err := count.NewSampler(m, f, p.Vars(), seed)
	if err != nil {
		return err
	}
	distinct := make(map[string]bool)
	for i := 0; i < samples; i++ {
		a := s.Sample()
		b := make([]byte, len(a))
		for j, bit := range a {
			b[j] = '0'
			if bit {
				b[j] = '1'
			}
		}
		fmt.Printf("sample %3d: %s\n", i, b)
		distinct[string(b)] = true
	}
	fmt.Printf("sampled %d assignments, %d distinct, seed %d\n", samples, len(distinct), seed)
	if obs.L.Enabled() {
		// Mass-in: the solution fraction of the space. Mass-out: the
		// fraction of distinct solutions this run actually covered.
		frac := count.Fraction(m, f)
		coverage := 0.0
		if total.IsInt64() && total.Int64() > 0 {
			coverage = float64(len(distinct)) / float64(total.Int64())
		}
		obs.L.Record(obs.OpRecord{
			Kind:    "count",
			Op:      "sample",
			SizeIn:  m.DagSize(f),
			SizeOut: len(distinct),
			MassIn:  frac,
			MassOut: frac * coverage,
			DurNS:   time.Since(start).Nanoseconds(),
		})
	}
	return nil
}

// recordCount files the counting ledger record: a lossless operation
// (mass retained 1) whose duration and size document the sweep.
func recordCount(p gauntlet.Params, nodes int, total *big.Int, dur time.Duration) {
	if !obs.L.Enabled() {
		return
	}
	frac, _ := new(big.Float).Quo(
		new(big.Float).SetInt(total),
		new(big.Float).SetMantExp(big.NewFloat(1), p.Vars()),
	).Float64()
	obs.L.Record(obs.OpRecord{
		Kind:    "count",
		Op:      "minterms",
		SizeIn:  nodes,
		SizeOut: nodes,
		MassIn:  frac,
		MassOut: frac,
		DurNS:   dur.Nanoseconds(),
	})
}
