// Command obscheck validates a JSONL trace file produced by the -trace
// flag of the other commands: every line must be a well-formed span or
// event record (see internal/obs), including the schema-versioned v2
// parallel-engine vocabulary (bdd.stw, bdd.stall, bdd.contention) whose
// known attributes are checked field-by-field. It prints a one-line
// summary and exits nonzero on the first malformed line (reported with its
// 1-based line number), which makes it usable as a smoke check in CI (see
// `make obs-smoke`, `make obs-par-smoke`, and `make check`).
//
// Usage:
//
//	obscheck trace.jsonl
//	obscheck -require reach.iteration trace.jsonl
//	reach -model counter -trace /dev/stdout | obscheck -quiet -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"bddkit/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated span/event names that must appear at least once")
	quiet := flag.Bool("quiet", false, "print only the summary line, not the per-name breakdown")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: %s [-quiet] [-require name,...] trace.jsonl|-\n", os.Args[0])
		os.Exit(2)
	}
	path := flag.Arg(0)
	var r io.Reader
	if path == "-" {
		path = "<stdin>"
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obscheck:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	sum, err := obs.ValidateJSONL(r)
	if err != nil {
		// ValidateJSONL errors carry the 1-based line number of the first
		// malformed record; prefix the file so multi-file runs stay readable.
		fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", path, err)
		os.Exit(1)
	}
	if *require != "" {
		var missing []string
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name != "" && sum.ByName[name] == 0 {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "obscheck: %s: missing required records: %s\n",
				path, strings.Join(missing, ", "))
			os.Exit(1)
		}
	}
	version := "v1 legacy"
	if sum.Version > 0 {
		version = fmt.Sprintf("schema v%d", sum.Version)
	}
	fmt.Printf("%s: %d lines OK (%d spans, %d events, %s)\n",
		path, sum.Lines, sum.Spans, sum.Events, version)
	if *quiet {
		return
	}
	names := make([]string, 0, len(sum.ByName))
	for n := range sum.ByName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-24s %d\n", n, sum.ByName[n])
	}
}
