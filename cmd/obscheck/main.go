// Command obscheck validates observability output from the other commands.
//
// In its default (trace) mode it checks a JSONL trace file produced by the
// -trace flag: every line must be a well-formed span or event record (see
// internal/obs), including the schema-versioned v2 parallel-engine
// vocabulary (bdd.stw, bdd.stall, bdd.contention) and the v3 quality
// ledger (quality.op), whose known attributes are checked field-by-field.
// It prints a one-line summary and exits nonzero on the first malformed
// line (reported with its 1-based line number), which makes it usable as a
// smoke check in CI (see `make obs-smoke`, `make obs-par-smoke`,
// `make obs-quality-smoke`, and `make check`).
//
// With -prom it instead lints a Prometheus text-exposition page, such as a
// snapshot of the -obs endpoint's /metrics: duplicate series, samples with
// no TYPE/HELP, unknown types, invalid counter values, and malformed
// histograms (non-cumulative buckets, missing le="+Inf", _count mismatch)
// are reported. With two files, the first is treated as an earlier scrape
// of the same process and counters that went backwards are flagged too.
//
// Usage:
//
//	obscheck trace.jsonl
//	obscheck -require reach.iteration trace.jsonl
//	reach -model counter -trace /dev/stdout | obscheck -quiet -
//	obscheck -prom metrics.txt
//	curl -s localhost:6060/metrics | obscheck -prom -
//	obscheck -prom scrape1.txt scrape2.txt   # + counter monotonicity
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"bddkit/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated span/event names that must appear at least once (trace mode)")
	quiet := flag.Bool("quiet", false, "print only the summary line, not the per-name breakdown")
	prom := flag.Bool("prom", false, "lint Prometheus text exposition instead of a JSONL trace")
	flag.Parse()
	if *prom {
		checkProm(flag.Args(), *quiet)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: %s [-quiet] [-require name,...] trace.jsonl|-\n", os.Args[0])
		fmt.Fprintf(os.Stderr, "       %s -prom metrics.txt|- [earlier-scrape.txt later-scrape.txt]\n", os.Args[0])
		os.Exit(2)
	}
	path := flag.Arg(0)
	r, closeFn := openArg(path)
	defer closeFn()
	if path == "-" {
		path = "<stdin>"
	}
	sum, err := obs.ValidateJSONL(r)
	if err != nil {
		// ValidateJSONL errors carry the 1-based line number of the first
		// malformed record; prefix the file so multi-file runs stay readable.
		fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", path, err)
		os.Exit(1)
	}
	if *require != "" {
		var missing []string
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name != "" && sum.ByName[name] == 0 {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "obscheck: %s: missing required records: %s\n",
				path, strings.Join(missing, ", "))
			os.Exit(1)
		}
	}
	version := "v1 legacy"
	if sum.Version > 0 {
		version = fmt.Sprintf("schema v%d", sum.Version)
	}
	fmt.Printf("%s: %d lines OK (%d spans, %d events, %s)\n",
		path, sum.Lines, sum.Spans, sum.Events, version)
	if *quiet {
		return
	}
	names := make([]string, 0, len(sum.ByName))
	for n := range sum.ByName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-24s %d\n", n, sum.ByName[n])
	}
}

// checkProm lints one exposition page, or two scrapes of the same process
// (earlier first) with a counter-monotonicity pass across them.
func checkProm(args []string, quiet bool) {
	if len(args) != 1 && len(args) != 2 {
		fmt.Fprintf(os.Stderr, "usage: %s -prom metrics.txt|- [earlier.txt later.txt]\n", os.Args[0])
		os.Exit(2)
	}
	scrapes := make([]*obs.PromScrape, len(args))
	for i, path := range args {
		r, closeFn := openArg(path)
		scrape, err := obs.ParsePrometheus(r)
		closeFn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", displayPath(path), err)
			os.Exit(1)
		}
		scrapes[i] = scrape
	}
	failed := false
	for i, scrape := range scrapes {
		problems := obs.LintPrometheus(scrape)
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %s\n", displayPath(args[i]), p)
		}
		failed = failed || len(problems) > 0
	}
	if len(scrapes) == 2 {
		problems := obs.CheckCounterMonotonic(scrapes[0], scrapes[1])
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "obscheck: %s -> %s: %s\n",
				displayPath(args[0]), displayPath(args[1]), p)
		}
		failed = failed || len(problems) > 0
	}
	if failed {
		os.Exit(1)
	}
	last := scrapes[len(scrapes)-1]
	series := 0
	for _, f := range last.Families {
		series += len(f.Samples)
	}
	fmt.Printf("%s: %d metric families, %d series OK\n",
		displayPath(args[len(args)-1]), len(last.Order), series)
	if quiet {
		return
	}
	for _, name := range sortedFamilies(last) {
		f := last.Families[name]
		fmt.Printf("  %-40s %-9s %d\n", name, f.Type, len(f.Samples))
	}
}

func sortedFamilies(s *obs.PromScrape) []string {
	names := append([]string(nil), s.Order...)
	sort.Strings(names)
	return names
}

func displayPath(path string) string {
	if path == "-" {
		return "<stdin>"
	}
	return path
}

// openArg opens a file argument, with "-" meaning stdin.
func openArg(path string) (io.Reader, func()) {
	if path == "-" {
		return os.Stdin, func() {}
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(1)
	}
	return f, func() { f.Close() }
}
