// Command obscheck validates a JSONL trace file produced by the -trace
// flag of the other commands: every line must be a well-formed span or
// event record (see internal/obs). It prints a one-line summary and exits
// nonzero on the first malformed line, which makes it usable as a smoke
// check in CI (see `make obs-smoke`).
//
// Usage:
//
//	obscheck trace.jsonl
//	obscheck -require reach.iteration trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"bddkit/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated span/event names that must appear at least once")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: %s [-require name,...] trace.jsonl\n", os.Args[0])
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(1)
	}
	defer f.Close()
	sum, err := obs.ValidateJSONL(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(1)
	}
	if *require != "" {
		var missing []string
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name != "" && sum.ByName[name] == 0 {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "obscheck: %s: missing required records: %s\n",
				flag.Arg(0), strings.Join(missing, ", "))
			os.Exit(1)
		}
	}
	names := make([]string, 0, len(sum.ByName))
	for n := range sum.ByName {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%s: %d lines OK (%d spans, %d events)\n",
		flag.Arg(0), sum.Lines, sum.Spans, sum.Events)
	for _, n := range names {
		fmt.Printf("  %-24s %d\n", n, sum.ByName[n])
	}
}
