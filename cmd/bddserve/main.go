// Command bddserve runs the multi-tenant BDD service: per-tenant sessions
// with their own managers and node quotas, an HTTP/JSON API over the
// library's build/approximate/decompose/traverse/count surface, admission
// control with deadline shedding, and budget-triggered degradation through
// the paper's under-approximation operators. Metrics for the server and
// every tenant are exposed on /metrics in Prometheus text format.
//
// Usage:
//
//	bddserve -addr :8344 -quota 200000 -deadline 30s
//
// See DESIGN.md ("Service layer") for the API walk-through.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bddkit/internal/cliutil"
	"bddkit/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8344", "listen address")
		workers    = flag.Int("workers", 1, "default per-tenant manager workers (0 = GOMAXPROCS, 1 = serial)")
		cacheBits  = flag.Uint("cache-bits", 0, "default per-tenant computed-table size exponent (0 = library default)")
		quota      = flag.Int("quota", serve.DefaultQuota, "default per-tenant live-node quota")
		deadline   = flag.Duration("deadline", serve.DefaultDeadline, "default per-operation deadline (0 = none)")
		queueDepth = flag.Int("queue-depth", serve.DefaultQueueDepth, "default per-tenant admission queue depth")
		maxTenants = flag.Int("max-tenants", serve.DefaultMaxTenants, "tenant pool size limit")
		drain      = flag.Duration("drain", serve.DefaultShutdownDrain, "shutdown drain window for in-flight requests")
	)
	flag.Parse()
	if err := cliutil.Check(
		cliutil.Workers(*workers),
		cliutil.CacheBits("cache-bits", *cacheBits),
		cliutil.Positive("quota", *quota),
		cliutil.NonNegativeDuration("deadline", *deadline),
		cliutil.Positive("queue-depth", *queueDepth),
		cliutil.Positive("max-tenants", *maxTenants),
		cliutil.NonNegativeDuration("drain", *drain),
	); err != nil {
		fmt.Fprintln(os.Stderr, "bddserve:", err)
		os.Exit(2)
	}

	srv := serve.New(serve.Config{
		DefaultQuota:      *quota,
		DefaultQueueDepth: *queueDepth,
		DefaultDeadline:   *deadline,
		Workers:           *workers,
		CacheBits:         *cacheBits,
		MaxTenants:        *maxTenants,
		ShutdownDrain:     *drain,
	})
	if err := srv.Start(*addr); err != nil {
		log.Fatalf("bddserve: %v", err)
	}
	log.Printf("bddserve: listening on %s (quota=%d deadline=%v queue=%d)",
		srv.BoundAddr, *quota, *deadline, *queueDepth)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	log.Printf("bddserve: %v; draining (up to %v)", got, *drain)
	start := time.Now()
	if err := srv.Close(); err != nil {
		log.Printf("bddserve: shutdown: %v", err)
		os.Exit(1)
	}
	log.Printf("bddserve: drained in %v", time.Since(start).Round(time.Millisecond))
}
