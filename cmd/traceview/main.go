// Command traceview aggregates the JSONL span traces written by the
// -trace flag of reach/bddlab/tables into human-readable reports.
//
// Usage:
//
//	traceview summary trace.jsonl      # per-span rollups + critical path
//	traceview diff a.jsonl b.jsonl     # A/B comparison with signed deltas
//	traceview amdahl trace.jsonl       # serial-fraction (STW) breakdown
//
// "-" reads a trace from stdin. The summary mode prints one rollup line
// per span/event name (count, total and self wall time, p50/p95) —
// including the schema-v3 quality.op ledger events — followed by a
// per-iteration critical-path breakdown for reachability traces; the
// diff mode prints the per-phase wall-time deltas of B relative to A,
// largest change first, tolerating one-sided phases: a name present in
// only one trace is reported with an "added"/"removed" ratio instead of
// failing. The amdahl mode aggregates the bdd.stw events of a parallel
// run into a per-cause stop-the-world table, the measured serial
// fraction, and the speedup bound it implies.
package main

import (
	"fmt"
	"io"
	"os"

	"bddkit/internal/obs"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	switch args[0] {
	case "summary":
		if len(args) != 2 {
			usage()
			return 2
		}
		a, code := analyze(args[1])
		if code != 0 {
			return code
		}
		a.WriteSummary(os.Stdout)
		return 0
	case "diff":
		if len(args) != 3 {
			usage()
			return 2
		}
		a, code := analyze(args[1])
		if code != 0 {
			return code
		}
		b, code := analyze(args[2])
		if code != 0 {
			return code
		}
		obs.WriteDiff(os.Stdout, a, b, obs.DiffRollups(a, b))
		return 0
	case "amdahl":
		if len(args) != 2 {
			usage()
			return 2
		}
		a, code := analyze(args[1])
		if code != 0 {
			return code
		}
		a.Amdahl().Write(os.Stdout)
		return 0
	default:
		fmt.Fprintf(os.Stderr, "traceview: unknown mode %q\n", args[0])
		usage()
		return 2
	}
}

func analyze(path string) (*obs.TraceAnalysis, int) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "traceview:", err)
			return nil, 1
		}
		defer f.Close()
		r = f
	}
	a, err := obs.AnalyzeTrace(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %s: %v\n", path, err)
		return nil, 1
	}
	return a, 0
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  traceview summary <trace.jsonl>       per-span rollups and critical path
  traceview diff <a.jsonl> <b.jsonl>    A/B per-phase wall-time deltas
  traceview amdahl <trace.jsonl>        stop-the-world / serial-fraction report
use "-" to read a trace from stdin
`)
}
