// Reachability: traverse the state space of the Am2910-style microprogram
// sequencer with conventional breadth-first search and with the paper's
// high-density traversal (frontier subsetting by RUA), and confirm both
// find the same reachable set — the experiment behind Table 1.
package main

import (
	"fmt"
	"time"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/model"
	"bddkit/internal/reach"
)

func main() {
	nl := model.Am2910(model.Am2910Config{Width: 5, StackDepth: 3})
	fmt.Printf("circuit %s: %d flip-flops, %d gates\n\n",
		nl.Name, len(nl.Latches), nl.NumGates())

	run := func(label string, f func(tr *reach.TR, init circuitRef) reach.Result) {
		c, err := circuit.Compile(nl, circuit.CompileOptions{AutoReorder: true})
		if err != nil {
			panic(err)
		}
		tr, err := reach.NewTR(c, reach.DefaultTROptions())
		if err != nil {
			panic(err)
		}
		res := f(tr, c.Init)
		fmt.Printf("%-8s %10.6g states  |reached| = %-6d  iters = %-5d  %v\n",
			label, res.States, res.Nodes, res.Iterations, res.Elapsed.Round(time.Millisecond))
		c.M.Deref(res.Reached)
		tr.Release()
		c.Release()
	}

	run("BFS", func(tr *reach.TR, init circuitRef) reach.Result {
		return tr.BFS(init, reach.Options{Budget: time.Minute})
	})
	run("HD+RUA", func(tr *reach.TR, init circuitRef) reach.Result {
		return tr.HighDensity(init, reach.Options{
			Subset:    reach.RUASubsetter(1.0),
			Threshold: 0,
			PImg:      &reach.PImg{Limit: 20000, Threshold: 10000, Subset: reach.RUASubsetter(1.0)},
			Budget:    time.Minute,
		})
	})
	run("HD+SP", func(tr *reach.TR, init circuitRef) reach.Result {
		return tr.HighDensity(init, reach.Options{
			Subset:    reach.SPSubsetter(),
			Threshold: 500,
			Budget:    time.Minute,
		})
	})
}

// circuitRef aliases the BDD reference type to keep the closure signatures
// readable.
type circuitRef = bdd.Ref
