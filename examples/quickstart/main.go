// Quickstart: build BDDs, combine them with boolean operations, count
// minterms, pick satisfying assignments, and export Graphviz — the core
// vocabulary of the library.
package main

import (
	"fmt"
	"os"

	"bddkit/internal/bdd"
)

func main() {
	// A manager with four variables x0..x3.
	m := bdd.New(4)
	x0, x1, x2, x3 := m.IthVar(0), m.IthVar(1), m.IthVar(2), m.IthVar(3)

	// f = (x0 AND x1) OR (x2 XOR x3). Operations return references the
	// caller owns; release them with Deref when done.
	and := m.And(x0, x1)
	xor := m.Xor(x2, x3)
	f := m.Or(and, xor)
	m.Deref(and)
	m.Deref(xor)

	fmt.Printf("|f|      = %d nodes\n", m.DagSize(f))
	fmt.Printf("||f||    = %.0f of %d minterms\n", m.CountMinterm(f, 4), 1<<4)
	fmt.Printf("density  = %.3f\n", m.Density(f, 4))
	fmt.Printf("support  = %v\n", m.SupportVars(f))

	// Evaluate under an assignment.
	fmt.Printf("f(1,1,0,0) = %v\n", m.Eval(f, []bool{true, true, false, false}))

	// One satisfying cube and full enumeration.
	cube := m.PickOneCube(f)
	fmt.Printf("a satisfying cube: %v (0=neg, 1=pos, 2=don't care)\n", cube)
	n := 0
	m.ForEachCube(f, func([]int8) bool { n++; return true })
	fmt.Printf("f has %d cubes (paths to One)\n", n)

	// Quantification: ∃x3. f and the relational product.
	ex := m.Exists(f, []int{3})
	fmt.Printf("|∃x3.f| = %d nodes, ||∃x3.f|| = %.0f minterms\n",
		m.DagSize(ex), m.CountMinterm(ex, 4))
	m.Deref(ex)

	// Generalized cofactor: restrict f to the care set x0.
	r := m.Restrict(f, x0)
	fmt.Printf("|f⇓x0|  = %d nodes (f remapped against care set x0)\n", m.DagSize(r))
	m.Deref(r)

	// Graphviz export (Figure 1 style: solid=then, dashed=else,
	// dotted=complemented else).
	if err := m.DumpDot(os.Stdout, []string{"f"}, []bdd.Ref{f}); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	m.Deref(f)
}
