// Decomposition: factor a large BDD into two conjuncts G·H = f with the
// three methods of the paper's Table 4 (Cofactor, Band, Disjoint) and with
// McMillan's canonical conjunctive decomposition, comparing factor balance
// and shared size.
package main

import (
	"fmt"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/decomp"
	"bddkit/internal/model"
)

func main() {
	nl := model.MultiplierNetlist(8)
	c, err := circuit.Compile(nl, circuit.CompileOptions{SkipNextVars: true})
	if err != nil {
		panic(err)
	}
	defer c.Release()
	m := c.M
	f := c.Outputs[7]
	fmt.Printf("f = product bit 7 of an 8x8 multiplier, |f| = %d\n\n", m.DagSize(f))

	check := func(name string, p decomp.Pair) {
		gh := m.And(p.G, p.H)
		ok := gh == f
		m.Deref(gh)
		fmt.Printf("%-10s |G| = %-6d |H| = %-6d shared = %-6d G·H=f: %v\n",
			name, m.DagSize(p.G), m.DagSize(p.H), p.SharedSize(m), ok)
		p.Deref(m)
	}

	check("Cofactor", decomp.Cofactor(m, f))
	check("Band", decomp.Decompose(m, f, decomp.BandPoints(m, f, decomp.DefaultBandConfig())))
	check("Disjoint", decomp.Decompose(m, f, decomp.DisjointPoints(m, f, decomp.DefaultDisjointConfig())))

	// Disjunctive dual: G + H = f.
	d := decomp.CofactorDisjunctive(m, f)
	or := m.Or(d.G, d.H)
	fmt.Printf("%-10s |G| = %-6d |H| = %-6d G+H=f: %v\n",
		"Disj.", m.DagSize(d.G), m.DagSize(d.H), or == f)
	m.Deref(or)
	d.Deref(m)

	// McMillan's canonical conjunctive decomposition: one factor per
	// support variable, factor i over the first i variables.
	fs := decomp.McMillan(m, f)
	back := decomp.ConjoinAll(m, fs)
	fmt.Printf("\nMcMillan: %d factors, shared size %d, conjoins back to f: %v\n",
		len(fs), m.SharingSize(fs), back == f)
	m.Deref(back)
	for _, fi := range fs {
		m.Deref(fi)
	}
	_ = bdd.One
}
