// Approximation: run the paper's four underapproximation algorithms (HB,
// SP, UA, RUA) and the compound methods on a hard function — the middle
// output bit of an 8x8 array multiplier — and compare sizes, minterm
// retention, and density, the way Table 2 of the paper does.
package main

import (
	"fmt"

	"bddkit/internal/approx"
	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/model"
)

func main() {
	// Compile an 8x8 multiplier and take a middle product bit: the
	// classic large-BDD function.
	nl := model.MultiplierNetlist(8)
	c, err := circuit.Compile(nl, circuit.CompileOptions{SkipNextVars: true})
	if err != nil {
		panic(err)
	}
	defer c.Release()
	m := c.M
	f := c.Outputs[8] // product bit 8

	n := m.NumVars()
	show := func(name string, g bdd.Ref) {
		fmt.Printf("%-14s |g| = %-6d ||g|| = %-12.6g δ = %-10.4f g⇒f: %v\n",
			name, m.DagSize(g), m.CountMinterm(g, n), approx.Density(m, g), m.Leq(g, f))
	}
	show("F (original)", f)

	// RUA with threshold 0 and quality 1: the paper's safe setting.
	rua := approx.RemapUnderApprox(m, f, 0, 1.0)
	show("RUA", rua)

	// HB and SP get RUA's size as threshold (the Table 2 protocol).
	th := m.DagSize(rua)
	hb := approx.HeavyBranch(m, f, th)
	show("HB", hb)
	sp := approx.ShortPaths(m, f, th)
	show("SP", sp)

	ua := approx.UnderApprox(m, f, 0, 0.5)
	show("UA", ua)

	// Compound methods: C1 = µ(RUA(f), f), C2 = µ(RUA(SP(f)), f).
	c1 := approx.Compound1(m, f, 0, 1.0)
	show("C1 = µ∘RUA", c1)
	c2 := approx.Compound2(m, f, th, 1.0)
	show("C2 = µ∘RUA∘SP", c2)

	// Overapproximation is the free dual.
	over := approx.RemapOverApprox(m, f, 0, 1.0)
	fmt.Printf("%-14s |g| = %-6d f⇒g: %v\n", "RUA-over", m.DagSize(over), m.Leq(f, over))

	for _, g := range []bdd.Ref{rua, hb, sp, ua, c1, c2, over} {
		m.Deref(g)
	}
}
