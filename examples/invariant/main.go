// Invariant checking: the model-checking workload the paper's algorithms
// accelerate. We ask whether the Am2910-style sequencer can ever overflow
// its hardware stack (push when full), get a shortest concrete trace, and
// replay it on the gate-level simulator.
package main

import (
	"fmt"
	"time"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/model"
	"bddkit/internal/reach"
)

func main() {
	cfg := model.Am2910Small()
	nl := model.Am2910(cfg)
	c, err := circuit.Compile(nl, circuit.CompileOptions{AutoReorder: true})
	if err != nil {
		panic(err)
	}
	a, err := reach.NewAnalyzer(c, reach.DefaultTROptions())
	if err != nil {
		panic(err)
	}
	m := c.M

	// Bad states: the stack pointer saturated at full depth. (The model
	// clamps rather than wraps, so "full" is the observable overflow.)
	bad := m.Ref(bdd.One)
	spBits := 2
	for 1<<uint(spBits) < cfg.StackDepth+1 {
		spBits++
	}
	for i, l := range nl.Latches {
		name := nl.NameOf(l.Q)
		if len(name) >= 2 && name[:2] == "sp" {
			bit := int(name[2] - '0')
			lit := m.IthVar(c.StateVars[i])
			if cfg.StackDepth>>uint(bit)&1 == 0 {
				lit = lit.Complement()
			}
			nb := m.And(bad, lit)
			m.Deref(bad)
			bad = nb
		}
	}

	cex, res, err := a.CheckInvariant(bad, reach.Options{Budget: time.Minute})
	if err != nil {
		panic(err)
	}
	fmt.Printf("reached %g states in %d iterations (%v)\n",
		res.States, res.Iterations, res.Elapsed.Round(time.Millisecond))
	if cex == nil {
		fmt.Println("invariant holds: the stack can never fill")
		return
	}
	fmt.Printf("stack fills after %d steps; replaying the trace:\n", cex.Len())
	sim, _ := circuit.NewSimulator(nl)
	sim.SetState(cex.States[0])
	for i := 0; i < cex.Len(); i++ {
		sim.Step(cex.Inputs[i])
		fmt.Printf("  step %2d: inputs=%v\n", i+1, fmtBits(cex.Inputs[i]))
	}
	got := sim.State()
	match := true
	for j := range got {
		if got[j] != cex.States[cex.Len()][j] {
			match = false
		}
	}
	fmt.Println("simulator agrees with symbolic trace:", match)

	m.Deref(bad)
	m.Deref(res.Reached)
	a.Release()
	c.Release()
}

func fmtBits(bits []bool) string {
	out := make([]byte, len(bits))
	for i, b := range bits {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
