GO ?= go

.PHONY: check test vet build race bench obs-smoke

## check: vet, build, test everything, then race-test the BDD core.
check: vet build test race

## vet: static analysis plus race-testing the packages with lock-free fast
## paths (the obs registry/tracer and the BDD core).
vet:
	$(GO) vet ./...
	$(GO) test -race -count=1 ./internal/obs/... ./internal/bdd/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./internal/bdd

## bench: run the memory-subsystem benchmarks plus the two paper-level
## benchmarks the cache overhaul is measured by; raw output lands in
## BENCH_cache.txt and a parsed summary in BENCH_cache.json.
bench:
	$(GO) test ./internal/bdd -run XXX -bench 'BenchmarkCacheChurn|BenchmarkUniqueTable' -benchmem | tee BENCH_cache.txt
	$(GO) test . -run XXX -bench 'BenchmarkITEMultiplier|BenchmarkTable1Reachability' | tee -a BENCH_cache.txt
	awk 'BEGIN { print "[" } \
	  /^Benchmark/ { \
	    if (n++) print ","; \
	    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $$1, $$2, $$3 \
	  } \
	  END { print "\n]" }' BENCH_cache.txt > BENCH_cache.json
	@echo "wrote BENCH_cache.txt and BENCH_cache.json"

## obs-smoke: end-to-end check of the observability layer — run a real
## traversal with -trace and validate the JSONL schema and span coverage.
obs-smoke:
	$(GO) run ./cmd/reach -in testdata/counter.net -method hd-rua -threshold 20 \
		-budget 30s -trace /tmp/bddkit-obs-smoke.jsonl >/dev/null
	$(GO) run ./cmd/obscheck \
		-require reach.cluster,reach.iteration,reach.image,reach.subset,approx.rua \
		/tmp/bddkit-obs-smoke.jsonl
