GO ?= go
BENCH_HISTORY ?= BENCH_reach.json
FUZZTIME ?= 10s
WORKERS ?= 1
OBS_PAR_ADDR ?= 127.0.0.1:6171
OBS_QUALITY_ADDR ?= 127.0.0.1:6172

SERVE_ADDR ?= 127.0.0.1:6173

.PHONY: check test vet build race fuzz-smoke gauntlet-smoke bench bench-save bench-cmp obs-smoke obs-par-smoke obs-quality-smoke profile-smoke serve-smoke

## check: vet, build, test everything, race-test the BDD core and the
## oracle stress driver, smoke the fuzz targets and the generator
## gauntlet (counts checked against independent ground truths), then
## smoke the observability layer end to end (trace schema + required
## spans, structural profiler, parallel telemetry + Amdahl breakdown,
## quality ledger + Prometheus exposition, benchmark trajectory and
## scaling curve in advisory mode) and the multi-tenant service daemon
## (round trip, forced budget-degrade, tenant isolation, graceful drain).
check: vet build test race fuzz-smoke gauntlet-smoke obs-smoke obs-par-smoke obs-quality-smoke profile-smoke serve-smoke
	$(GO) run ./cmd/tables -bench-cmp $(BENCH_HISTORY) -bench-advisory
	$(GO) run ./cmd/tables -speedup $(BENCH_HISTORY) -bench-advisory

## vet: static analysis plus race-testing the packages with lock-free fast
## paths (the obs registry/tracer and the BDD core).
vet:
	$(GO) vet ./...
	$(GO) test -race -count=1 ./internal/obs/... ./internal/bdd/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the memory-model half of the parallel-engine checks — the BDD
## core's own tests, the oracle differential + concurrent stress drivers
## (several clients hammering one Workers=4 manager while GC and
## reordering fire), and the parallel image path in reach.
race:
	$(GO) test -race -count=1 ./internal/bdd ./internal/oracle ./internal/count ./internal/serve
	$(GO) test -race -count=1 -run Parallel ./internal/reach

## fuzz-smoke: run each native fuzz target briefly ($(FUZZTIME) apiece) on
## top of its checked-in seed corpus under testdata/fuzz/. This is a smoke
## pass for `make check`; leave a target running with e.g.
## `go test ./internal/oracle -run '^$$' -fuzz FuzzLoad` to really dig.
fuzz-smoke:
	$(GO) test ./internal/oracle -run '^$$' -fuzz 'FuzzLoad$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oracle -run '^$$' -fuzz 'FuzzNetlistParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oracle -run '^$$' -fuzz 'FuzzITESequence$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oracle -run '^$$' -fuzz 'FuzzGauntletParams$$' -fuzztime $(FUZZTIME)

## gauntlet-smoke: build every small gauntlet instance with bddcount and
## verify each exact count against its independent ground truth (published
## N-Queens sequence, brute-force Life simulation, DFS cycle enumeration,
## closed-form adder-miter arithmetic), then exercise the sampling and
## weighted paths once each.
gauntlet-smoke:
	$(GO) build -o /tmp/bddkit-bddcount ./cmd/bddcount
	/tmp/bddkit-bddcount -family queens -n 6 -check >/dev/null
	/tmp/bddkit-bddcount -family queens -n 7 -check -workers 4 >/dev/null
	/tmp/bddkit-bddcount -family life -rows 3 -cols 3 -check >/dev/null
	/tmp/bddkit-bddcount -family hamilton-grid -rows 2 -cols 3 -check >/dev/null
	/tmp/bddkit-bddcount -family hamilton-knight -rows 3 -cols 3 -check >/dev/null
	/tmp/bddkit-bddcount -family equiv-adder -n 8 -check >/dev/null
	/tmp/bddkit-bddcount -family equiv-adder -n 8 -fault -check >/dev/null
	/tmp/bddkit-bddcount -family queens -n 5 -mode sample -samples 20 -seed 7 -check >/dev/null
	/tmp/bddkit-bddcount -family life -rows 3 -cols 3 -mode weighted -bias 0.25 >/dev/null
	$(GO) run ./cmd/tables -table gauntlet >/dev/null
	@echo "gauntlet-smoke OK"

## bench: run the memory-subsystem benchmarks plus the two paper-level
## benchmarks the cache overhaul is measured by; raw output lands in
## BENCH_cache.txt and a parsed summary in BENCH_cache.json.
bench:
	$(GO) test ./internal/bdd -run XXX -bench 'BenchmarkCacheChurn|BenchmarkUniqueTable' -benchmem | tee BENCH_cache.txt
	$(GO) test . -run XXX -bench 'BenchmarkITEMultiplier|BenchmarkTable1Reachability' | tee -a BENCH_cache.txt
	awk 'BEGIN { print "[" } \
	  /^Benchmark/ { \
	    if (n++) print ","; \
	    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $$1, $$2, $$3 \
	  } \
	  END { print "\n]" }' BENCH_cache.txt > BENCH_cache.json
	@echo "wrote BENCH_cache.txt and BENCH_cache.json"

## bench-save: run Table 1 (small scale) and append a schema-versioned
## record to the benchmark trajectory file. Run twice (or on two commits)
## and `make bench-cmp` diffs the latest pair. Records are tagged with
## $(WORKERS); save at WORKERS=1 and WORKERS=4 to feed `tables -speedup`.
bench-save:
	$(GO) run ./cmd/tables -table 1 -workers $(WORKERS) -bench-save $(BENCH_HISTORY) >/dev/null

## bench-cmp: compare the two most recent trajectory records; fails on a
## >15% wall-time or >25% peak-node regression (beyond absolute floors).
bench-cmp:
	$(GO) run ./cmd/tables -bench-cmp $(BENCH_HISTORY)

## obs-smoke: end-to-end check of the observability layer — run a real
## traversal with -trace and per-iteration profiles, validate the JSONL
## schema and span coverage, and render the traceview rollup.
obs-smoke:
	$(GO) run ./cmd/reach -in testdata/counter.net -method hd-rua -threshold 20 \
		-budget 30s -profile -trace /tmp/bddkit-obs-smoke.jsonl >/dev/null
	$(GO) run ./cmd/obscheck -quiet \
		-require reach.cluster,reach.iteration,reach.image,reach.subset,reach.profile,approx.rua \
		/tmp/bddkit-obs-smoke.jsonl
	$(GO) run ./cmd/traceview summary /tmp/bddkit-obs-smoke.jsonl | head -20

## obs-par-smoke: end-to-end check of the parallel observability stack —
## run a Workers=4 traversal with sampling armed and the live endpoint up
## (-obs-linger keeps it serving briefly after the run so the curls always
## land), scrape /parallel and /metrics, validate the v2 trace vocabulary
## (bdd.contention is always emitted on a parallel run), and render the
## Amdahl stop-the-world breakdown.
obs-par-smoke:
	$(GO) build -o /tmp/bddkit-reach-par ./cmd/reach
	/tmp/bddkit-reach-par -in testdata/counter.net -method bfs -workers 4 \
		-par-sample 64 -obs $(OBS_PAR_ADDR) -obs-linger 6s \
		-trace /tmp/bddkit-obs-par-smoke.jsonl >/dev/null & \
	pid=$$!; \
	ok=1; \
	for i in $$(seq 1 50); do \
		if curl -sf http://$(OBS_PAR_ADDR)/parallel >/tmp/bddkit-par-smoke-parallel.json 2>/dev/null \
			&& grep -q '"workers": *4' /tmp/bddkit-par-smoke-parallel.json; then ok=0; break; fi; \
		sleep 0.1; \
	done; \
	if [ $$ok -ne 0 ]; then echo "obs-par-smoke: /parallel never reported workers=4"; kill $$pid 2>/dev/null; exit 1; fi; \
	curl -sf http://$(OBS_PAR_ADDR)/metrics | grep -q 'bdd_stw_total' || { echo "obs-par-smoke: /metrics missing bdd_stw_total"; kill $$pid 2>/dev/null; exit 1; }; \
	wait $$pid
	$(GO) run ./cmd/obscheck -quiet -require bdd.contention /tmp/bddkit-obs-par-smoke.jsonl
	$(GO) run ./cmd/traceview amdahl /tmp/bddkit-obs-par-smoke.jsonl
	@echo "obs-par-smoke OK"

## obs-quality-smoke: end-to-end check of the quality-of-result telemetry —
## run the approximation corpus (Table 2, which includes the hwb functions)
## with the ledger armed and the live endpoint up, scrape /metrics twice
## and lint the Prometheus exposition (including counter monotonicity
## across the pair) with `obscheck -prom`, check /quality reports ledger
## operations, and validate the schema-v3 quality.op events in the trace.
obs-quality-smoke:
	$(GO) build -o /tmp/bddkit-tables-q ./cmd/tables
	$(GO) build -o /tmp/bddkit-obscheck-q ./cmd/obscheck
	/tmp/bddkit-tables-q -table 2 -obs $(OBS_QUALITY_ADDR) -obs-linger 6s \
		-trace /tmp/bddkit-obs-quality-smoke.jsonl >/dev/null & \
	pid=$$!; \
	ok=1; \
	for i in $$(seq 1 50); do \
		if curl -sf http://$(OBS_QUALITY_ADDR)/metrics >/tmp/bddkit-quality-metrics-1.txt 2>/dev/null \
			&& grep -q 'quality_ops_total' /tmp/bddkit-quality-metrics-1.txt; then ok=0; break; fi; \
		sleep 0.1; \
	done; \
	if [ $$ok -ne 0 ]; then echo "obs-quality-smoke: /metrics never served quality_ops_total"; kill $$pid 2>/dev/null; exit 1; fi; \
	sleep 1; \
	curl -sf http://$(OBS_QUALITY_ADDR)/metrics >/tmp/bddkit-quality-metrics-2.txt || { echo "obs-quality-smoke: second /metrics scrape failed"; kill $$pid 2>/dev/null; exit 1; }; \
	curl -sf http://$(OBS_QUALITY_ADDR)/quality >/tmp/bddkit-quality-snapshot.json || { echo "obs-quality-smoke: /quality scrape failed"; kill $$pid 2>/dev/null; exit 1; }; \
	grep -q '"per_op"' /tmp/bddkit-quality-snapshot.json || { echo "obs-quality-smoke: /quality missing per_op aggregates"; kill $$pid 2>/dev/null; exit 1; }; \
	wait $$pid
	/tmp/bddkit-obscheck-q -prom -quiet /tmp/bddkit-quality-metrics-1.txt /tmp/bddkit-quality-metrics-2.txt
	/tmp/bddkit-obscheck-q -quiet -require quality.op /tmp/bddkit-obs-quality-smoke.jsonl
	@echo "obs-quality-smoke OK"

## serve-smoke: end-to-end check of the bddserve daemon — build a tenant
## up from a netlist through ops/approx/count/snapshot/restore, force a
## budget-degrade on a starved tenant (degradation marker in the envelope,
## loss on the quality ledger, counts on /metrics which must lint clean
## under `obscheck -prom`), verify a concurrent tenant stays exact, and
## drain the daemon gracefully on SIGTERM. Artifacts (server log, metrics
## scrapes, snapshot) land under /tmp/bddkit-serve-smoke*.
serve-smoke:
	sh scripts/serve-smoke.sh $(SERVE_ADDR)

## profile-smoke: exercise the structural profiler — forest profile with
## the live-node cross-check, plus a single-output profile after RUA.
profile-smoke:
	$(GO) run ./cmd/bddlab -in testdata/counter.net -profile text | tail -3
	$(GO) run ./cmd/bddlab -in testdata/counter.net -out tc -approx rua -profile text >/dev/null
	@echo "profile-smoke OK"
