GO ?= go

.PHONY: check test vet build race bench

## check: vet, build, test everything, then race-test the BDD core.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./internal/bdd

## bench: run the memory-subsystem benchmarks plus the two paper-level
## benchmarks the cache overhaul is measured by; raw output lands in
## BENCH_cache.txt and a parsed summary in BENCH_cache.json.
bench:
	$(GO) test ./internal/bdd -run XXX -bench 'BenchmarkCacheChurn|BenchmarkUniqueTable' -benchmem | tee BENCH_cache.txt
	$(GO) test . -run XXX -bench 'BenchmarkITEMultiplier|BenchmarkTable1Reachability' | tee -a BENCH_cache.txt
	awk 'BEGIN { print "[" } \
	  /^Benchmark/ { \
	    if (n++) print ","; \
	    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $$1, $$2, $$3 \
	  } \
	  END { print "\n]" }' BENCH_cache.txt > BENCH_cache.json
	@echo "wrote BENCH_cache.txt and BENCH_cache.json"
