module bddkit

go 1.22
