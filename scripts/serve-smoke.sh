#!/bin/sh
# serve-smoke: end-to-end check of the bddserve daemon — tenant round trip
# (netlist -> ops -> approx -> count -> snapshot -> restore), a forced
# budget-degrade on a starved tenant with the quality ledger and metrics
# checked, tenant isolation (a concurrent tenant stays exact), Prometheus
# lint via `obscheck -prom`, and a graceful drain on SIGTERM.
#
# Usage: scripts/serve-smoke.sh [addr]
# Artifacts land under /tmp/bddkit-serve-smoke* (CI uploads them on failure).
set -eu

ADDR="${1:-127.0.0.1:6173}"
BASE="http://$ADDR"
LOG=/tmp/bddkit-serve-smoke.log
SNAP=/tmp/bddkit-serve-smoke-snapshot.txt
M1=/tmp/bddkit-serve-smoke-metrics-1.txt
M2=/tmp/bddkit-serve-smoke-metrics-2.txt
PID=""

fail() {
    echo "serve-smoke: $1" >&2
    [ -n "$PID" ] && kill "$PID" 2>/dev/null
    exit 1
}

go build -o /tmp/bddkit-bddserve ./cmd/bddserve
go build -o /tmp/bddkit-obscheck-serve ./cmd/obscheck

# Flag validation is wired in: a bad quota must be rejected before listen.
if /tmp/bddkit-bddserve -quota -5 2>/dev/null; then
    fail "bddserve accepted -quota -5"
fi

/tmp/bddkit-bddserve -addr "$ADDR" -deadline 30s >"$LOG" 2>&1 &
PID=$!

ok=1
for _ in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then ok=0; break; fi
    sleep 0.1
done
[ $ok -eq 0 ] || fail "daemon never answered /healthz"

# --- tenant round trip -------------------------------------------------
curl -sf -X PUT "$BASE/v1/tenants/smoke" >/dev/null || fail "create tenant"
curl -sf -X POST --data-binary @testdata/counter.net \
    "$BASE/v1/tenants/smoke/netlist" >/dev/null || fail "netlist upload"
curl -sf -X POST -d '{"op":"not","args":["tc"],"result":"ntc"}' \
    "$BASE/v1/tenants/smoke/ops" >/dev/null || fail "ops not"
curl -sf -X POST -d '{"op":"sp","target":"tc","threshold":16,"result":"tc_sp"}' \
    "$BASE/v1/tenants/smoke/approx" >/dev/null || fail "approx sp"
curl -sf -X POST -d '{"target":"tc","mode":"exact"}' \
    "$BASE/v1/tenants/smoke/count" | grep -q '"exact": "16"' \
    || fail "count of tc is not 16"
curl -sf "$BASE/v1/tenants/smoke/snapshot" >"$SNAP" || fail "snapshot"
curl -sf -X PUT "$BASE/v1/tenants/mirror" >/dev/null || fail "create mirror"
curl -sf -X POST --data-binary @"$SNAP" \
    "$BASE/v1/tenants/mirror/restore" >/dev/null || fail "restore"
curl -sf -X POST -d '{"target":"tc","mode":"exact"}' \
    "$BASE/v1/tenants/mirror/count" | grep -q '"exact": "16"' \
    || fail "restored count of tc is not 16"

# --- forced budget-degrade --------------------------------------------
# The starved tenant's quota is far below its compiled multiplier, so the
# first budgeted operation must come back degraded-but-sound, while the
# concurrent smoke tenant stays exact.
curl -sf -X PUT -d '{"quota":32}' "$BASE/v1/tenants/starved" >/dev/null \
    || fail "create starved tenant"
curl -sf -X POST --data-binary @testdata/mult4.net \
    "$BASE/v1/tenants/starved/netlist" >/dev/null || fail "mult4 upload"
DEGRADED=$(curl -sf -X POST -d '{"op":"and","args":["p7","p6"],"result":"hi"}' \
    "$BASE/v1/tenants/starved/ops") || fail "starved ops request failed"
echo "$DEGRADED" | grep -q '"degraded": true' \
    || fail "starved tenant answer not marked degraded: $DEGRADED"
echo "$DEGRADED" | grep -q '"degrade_reason"' \
    || fail "degraded answer carries no reason"
curl -sf -X POST -d '{"target":"tc","mode":"exact"}' \
    "$BASE/v1/tenants/smoke/count" >/tmp/bddkit-serve-smoke-isolated.json \
    || fail "smoke tenant count after degrade"
grep -q '"exact": "16"' /tmp/bddkit-serve-smoke-isolated.json \
    || fail "concurrent tenant no longer exact after another tenant degraded"
if grep -q '"degraded": true' /tmp/bddkit-serve-smoke-isolated.json; then
    fail "concurrent tenant marked degraded"
fi

# The loss is on the quality ledger...
curl -sf "$BASE/v1/quality" | grep -q '"approx.degrade"' \
    || fail "quality ledger has no approx.degrade record"

# ...and on /metrics, which lints clean across two scrapes.
curl -sf "$BASE/metrics" >"$M1" || fail "first metrics scrape"
grep -q 'serve_tenant_degrades_total{tenant="starved"} 1' "$M1" \
    || fail "metrics missing starved tenant degrade count"
grep -q 'serve_tenant_degrades_total{tenant="smoke"} 0' "$M1" \
    || fail "metrics missing smoke tenant zero degrade count"
curl -sf "$BASE/metrics" >"$M2" || fail "second metrics scrape"
/tmp/bddkit-obscheck-serve -prom -quiet "$M1" "$M2" || fail "obscheck -prom lint"

# --- graceful drain ----------------------------------------------------
kill -TERM "$PID"
wait "$PID" || fail "daemon exited nonzero on SIGTERM"
PID=""
grep -q 'drained in' "$LOG" || fail "shutdown did not drain (log: $LOG)"

echo "serve-smoke OK"
