package bddkit_test

// One benchmark per table/figure of the paper's evaluation section, plus
// micro-benchmarks of the operations they are built from. The table
// benchmarks run the same code paths as `go run ./cmd/tables` at a scale
// that keeps `go test -bench=.` tractable; the full-scale numbers recorded
// in EXPERIMENTS.md come from `go run ./cmd/tables -paper`.

import (
	"runtime"
	"sync"
	"testing"

	"bddkit/internal/approx"
	"bddkit/internal/bdd"
	"bddkit/internal/bench"
	"bddkit/internal/circuit"
	"bddkit/internal/decomp"
	"bddkit/internal/mc"
	"bddkit/internal/model"
	"bddkit/internal/reach"
)

var (
	corpusOnce sync.Once
	corpus     []bench.Fn
)

func sharedCorpus(b *testing.B) []bench.Fn {
	corpusOnce.Do(func() {
		var err error
		corpus, err = bench.Build(bench.SmallCorpus())
		if err != nil {
			b.Fatal(err)
		}
	})
	if len(corpus) == 0 {
		b.Fatal("empty corpus")
	}
	return corpus
}

// BenchmarkTable1Reachability regenerates Table 1 (BFS vs HD+RUA vs HD+SP)
// at test scale. The managers are created inside RunTable1, so the worker
// count is plumbed through the package default; -cpu 1,4 then compares the
// serial engine against the work-stealing one.
func BenchmarkTable1Reachability(b *testing.B) {
	bdd.SetDefaultWorkers(runtime.GOMAXPROCS(0))
	defer bdd.SetDefaultWorkers(1)
	var rows []bench.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunTable1(bench.Table1Small())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
	peak, hits, n := 0, 0.0, 0
	for _, r := range rows {
		for _, mr := range []bench.MethodResult{r.BFS, r.RUA, r.SP} {
			if mr.PeakNodes > peak {
				peak = mr.PeakNodes
			}
			hits += mr.CacheHit
			n++
		}
	}
	b.ReportMetric(float64(peak), "peak-live-nodes")
	if n > 0 {
		b.ReportMetric(hits/float64(n), "cache-hit-rate")
	}
}

// BenchmarkTable2SimpleApprox regenerates Table 2 (F/HB/SP/UA/RUA).
func BenchmarkTable2SimpleApprox(b *testing.B) {
	fns := sharedCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := bench.Table2(fns)
		if len(res.Rows) != 5 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkTable3CompoundApprox regenerates Table 3 (C1, C2).
func BenchmarkTable3CompoundApprox(b *testing.B) {
	fns := sharedCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := bench.Table3(fns)
		if len(res.Rows) != 2 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkTable4Decomposition regenerates Table 4 (Cofactor/Disjoint/Band).
func BenchmarkTable4Decomposition(b *testing.B) {
	fns := sharedCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := bench.Table4(fns, bench.SmallCorpus().MinNodes)
		if res.Cases == 0 {
			b.Fatal("no cases")
		}
	}
}

// BenchmarkFigure1Restrict exercises the restrict operator whose remapping
// step (Figure 1 of the paper) underlies the approximation algorithms.
func BenchmarkFigure1Restrict(b *testing.B) {
	nl := model.MultiplierNetlist(8)
	c, err := circuit.Compile(nl, circuit.CompileOptions{SkipNextVars: true})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Release()
	m := c.M
	f := c.Outputs[8]
	care := c.Outputs[6]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := m.Restrict(f, care)
		m.Deref(r)
	}
}

// --- Micro-benchmarks of the substrate operations -------------------------

func buildMultiplierBit(b *testing.B, n, bit int) (*bdd.Manager, bdd.Ref, func()) {
	nl := model.MultiplierNetlist(n)
	c, err := circuit.Compile(nl, circuit.CompileOptions{SkipNextVars: true})
	if err != nil {
		b.Fatal(err)
	}
	return c.M, c.Outputs[bit], c.Release
}

// BenchmarkITEMultiplier measures one hard ITE on a multiplier output bit.
// The computed table is cleared every iteration so each one redoes the full
// recursion (otherwise iteration 2 onward is a single cache probe), and the
// manager runs with GOMAXPROCS workers so -cpu 1,4 contrasts the serial and
// work-stealing engines on identical work.
func BenchmarkITEMultiplier(b *testing.B) {
	nl := model.MultiplierNetlist(8)
	cfg := bdd.DefaultConfig()
	cfg.Workers = runtime.GOMAXPROCS(0)
	c, err := circuit.Compile(nl, circuit.CompileOptions{SkipNextVars: true, BDDConfig: &cfg})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Release()
	m := c.M
	f, g, h := c.Outputs[8], c.Outputs[7], c.Outputs[6]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ClearCache()
		r := m.ITE(f, g, h)
		m.Deref(r)
	}
	b.StopTimer()
	st := m.Stats()
	b.ReportMetric(float64(st.PeakLive), "peak-live-nodes")
	if st.CacheLookups > 0 {
		b.ReportMetric(float64(st.CacheHits)/float64(st.CacheLookups), "cache-hit-rate")
	}
}

func BenchmarkRemapUnderApprox(b *testing.B) {
	m, f, done := buildMultiplierBit(b, 8, 8)
	defer done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := approx.RemapUnderApprox(m, f, 0, 1.0)
		m.Deref(r)
	}
}

func BenchmarkShortPaths(b *testing.B) {
	m, f, done := buildMultiplierBit(b, 8, 8)
	defer done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := approx.ShortPaths(m, f, 100)
		m.Deref(r)
	}
}

func BenchmarkHeavyBranch(b *testing.B) {
	m, f, done := buildMultiplierBit(b, 8, 8)
	defer done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := approx.HeavyBranch(m, f, 100)
		m.Deref(r)
	}
}

func BenchmarkDecomposeBand(b *testing.B) {
	m, f, done := buildMultiplierBit(b, 8, 7)
	defer done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := decomp.Decompose(m, f, decomp.BandPoints(m, f, decomp.DefaultBandConfig()))
		p.Deref(m)
	}
}

func BenchmarkDecomposeCofactor(b *testing.B) {
	m, f, done := buildMultiplierBit(b, 8, 7)
	defer done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := decomp.Cofactor(m, f)
		p.Deref(m)
	}
}

func BenchmarkSifting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, f, done := buildMultiplierBit(b, 7, 7)
		b.StartTimer()
		m.Reorder(bdd.ReorderSift, bdd.SiftConfig{})
		b.StopTimer()
		_ = f
		done()
		b.StartTimer()
	}
}

func BenchmarkImageComputation(b *testing.B) {
	nl := model.Am2910(model.Am2910Small())
	c, err := circuit.Compile(nl, circuit.CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Release()
	tr, err := reach.NewTR(c, reach.DefaultTROptions())
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Release()
	var st reach.ImageStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img := tr.Image(c.Init, nil, &st)
		c.M.Deref(img)
	}
}

func BenchmarkReorderWindow3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, f, done := buildMultiplierBit(b, 7, 7)
		b.StartTimer()
		m.Reorder(bdd.ReorderWindow3, bdd.SiftConfig{})
		b.StopTimer()
		_ = f
		done()
		b.StartTimer()
	}
}

func BenchmarkMcMillanDecomposition(b *testing.B) {
	m, f, done := buildMultiplierBit(b, 8, 7)
	defer done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := decomp.McMillan(m, f)
		for _, fi := range fs {
			m.Deref(fi)
		}
	}
}

func BenchmarkEquivalenceMultipliers(b *testing.B) {
	mk := func(name string, n int) *circuit.Netlist {
		bl := circuit.NewBuilder(name)
		x := bl.InputBus("a", n)
		y := bl.InputBus("b", n)
		bl.OutputBus("p", bl.Multiplier(x, y))
		return bl.MustBuild()
	}
	a := mk("m1", 6)
	c := mk("m1", 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, _, err := circuit.Equivalent(a, c)
		if err != nil || !ok {
			b.Fatal("equivalence failed")
		}
	}
}

func BenchmarkCTLCheck(b *testing.B) {
	nl := model.Am2910(model.Am2910Small())
	c, err := circuit.Compile(nl, circuit.CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Release()
	tr, err := reach.NewTR(c, reach.DefaultTROptions())
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Release()
	ck := mc.NewChecker(c, tr, nil)
	ck.DefineLatchAtoms()
	defer ck.Release()
	f, err := mc.Parse("AG EF (upc0 & !upc1)")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sat, err := ck.Sat(f)
		if err != nil {
			b.Fatal(err)
		}
		c.M.Deref(sat)
	}
}

func BenchmarkBiasedUnderApprox(b *testing.B) {
	m, f, done := buildMultiplierBit(b, 8, 8)
	defer done()
	bias := m.And(m.IthVar(0), m.IthVar(9))
	defer m.Deref(bias)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := approx.BiasedUnderApprox(m, f, bias, 0, 1.0, 4.0)
		m.Deref(r)
	}
}

func BenchmarkBFSCounter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bld := circuit.NewBuilder("counter")
		en := bld.Input("en")
		q := bld.LatchBus("q", 10, 0)
		inc, _ := bld.Incrementer(q)
		bld.SetNextBus(q, bld.MuxBus(en, inc, q))
		bld.Output("tc", bld.EqConst(q, 1023))
		nl := bld.MustBuild()
		c, err := circuit.Compile(nl, circuit.CompileOptions{})
		if err != nil {
			b.Fatal(err)
		}
		tr, err := reach.NewTR(c, reach.DefaultTROptions())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res := tr.BFS(c.Init, reach.Options{})
		b.StopTimer()
		c.M.Deref(res.Reached)
		tr.Release()
		c.Release()
		b.StartTimer()
	}
}
